#include "expr/typecheck.h"

namespace gigascope::expr {

namespace {

using gsql::BinaryOp;
using gsql::UnaryOp;

bool IsComparison(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kNeq || op == BinaryOp::kLt ||
         op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;
}

bool IsLogical(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

bool IsBitwise(BinaryOp op) {
  return op == BinaryOp::kBitAnd || op == BinaryOp::kBitOr;
}

class Checker {
 public:
  explicit Checker(const TypeCheckContext& ctx) : ctx_(ctx) {}

  Result<IrPtr> Check(const gsql::ExprPtr& expr) {
    if (expr == nullptr) return Status::Internal("null expression");
    if (auto* lit = std::get_if<gsql::LiteralExpr>(&expr->node)) {
      return CheckLiteral(*lit);
    }
    if (auto* ref = std::get_if<gsql::ColumnRefExpr>(&expr->node)) {
      return CheckColumn(expr.get(), *ref);
    }
    if (auto* param = std::get_if<gsql::ParamExpr>(&expr->node)) {
      return CheckParam(*param);
    }
    if (auto* call = std::get_if<gsql::CallExpr>(&expr->node)) {
      return CheckCall(*call);
    }
    if (auto* unary = std::get_if<gsql::UnaryExpr>(&expr->node)) {
      return CheckUnary(*unary);
    }
    if (auto* binary = std::get_if<gsql::BinaryExpr>(&expr->node)) {
      return CheckBinary(*binary);
    }
    return Status::Internal("unknown expression node");
  }

 private:
  Result<IrPtr> CheckLiteral(const gsql::LiteralExpr& lit) {
    switch (lit.type) {
      case DataType::kBool:
        return MakeConst(Value::Bool(lit.bool_value));
      case DataType::kInt:
        return MakeConst(Value::Int(lit.int_value));
      case DataType::kUint:
        return MakeConst(Value::Uint(lit.uint_value));
      case DataType::kFloat:
        return MakeConst(Value::Float(lit.float_value));
      case DataType::kString:
        return MakeConst(Value::String(lit.string_value));
      case DataType::kIp:
        return MakeConst(
            Value::Ip(static_cast<uint32_t>(lit.uint_value)));
    }
    return Status::Internal("unknown literal type");
  }

  Result<IrPtr> CheckColumn(const gsql::Expr* expr,
                            const gsql::ColumnRefExpr& ref) {
    if (ctx_.bindings == nullptr) {
      return Status::Internal("no column bindings supplied");
    }
    auto it = ctx_.bindings->find(expr);
    if (it == ctx_.bindings->end()) {
      return Status::Internal("column '" + ref.column +
                              "' was not resolved by the analyzer");
    }
    const gsql::ColumnBinding& binding = it->second;
    if (binding.input >= ctx_.inputs.size()) {
      return Status::Internal("column binding input out of range");
    }
    const gsql::FieldDef& field =
        ctx_.inputs[binding.input].field(binding.field);
    return MakeFieldRef(binding.input, binding.field, field.type, field.name);
  }

  Result<IrPtr> CheckParam(const gsql::ParamExpr& param) {
    for (size_t i = 0; i < ctx_.params.size(); ++i) {
      if (ctx_.params[i].first == param.name) {
        return MakeParamRef(i, ctx_.params[i].second, param.name);
      }
    }
    return Status::NotFound("undeclared query parameter '$" + param.name +
                            "' (declare it in the DEFINE block)");
  }

  Result<IrPtr> CheckCall(const gsql::CallExpr& call) {
    if (gsql::IsAggregateFunction(call.function)) {
      return Status::Internal(
          "aggregate '" + call.function +
          "' reached the scalar type checker (planner bug)");
    }
    if (ctx_.resolver == nullptr) {
      return Status::NotFound("unknown function '" + call.function +
                              "' (no function registry)");
    }
    GS_ASSIGN_OR_RETURN(const FunctionInfo* fn,
                        ctx_.resolver->Resolve(call.function));
    if (call.args.size() != fn->arg_types.size()) {
      return Status::TypeError(
          "function '" + call.function + "' expects " +
          std::to_string(fn->arg_types.size()) + " arguments, got " +
          std::to_string(call.args.size()));
    }
    std::vector<IrPtr> args;
    for (size_t i = 0; i < call.args.size(); ++i) {
      GS_ASSIGN_OR_RETURN(IrPtr arg, Check(call.args[i]));
      if (arg->type != fn->arg_types[i]) {
        // Strings never convert; numerics cast.
        if (arg->type == DataType::kString ||
            fn->arg_types[i] == DataType::kString) {
          return Status::TypeError(
              "argument " + std::to_string(i + 1) + " of '" + call.function +
              "' must be " + gsql::DataTypeName(fn->arg_types[i]) + ", got " +
              gsql::DataTypeName(arg->type));
        }
        arg = MakeCastIr(std::move(arg), fn->arg_types[i]);
      }
      bool is_handle = i < fn->pass_by_handle.size() && fn->pass_by_handle[i];
      if (is_handle && arg->kind != IrKind::kConst &&
          arg->kind != IrKind::kParam) {
        return Status::TypeError(
            "argument " + std::to_string(i + 1) + " of '" + call.function +
            "' is pass-by-handle and must be a literal or query parameter");
      }
      args.push_back(std::move(arg));
    }
    return MakeCallIr(fn, std::move(args));
  }

  Result<IrPtr> CheckUnary(const gsql::UnaryExpr& unary) {
    GS_ASSIGN_OR_RETURN(IrPtr child, Check(unary.operand));
    if (unary.op == UnaryOp::kNot) {
      if (child->type != DataType::kBool) {
        return Status::TypeError("NOT requires a BOOL operand, got " +
                                 std::string(gsql::DataTypeName(child->type)));
      }
      return MakeUnaryIr(UnaryOp::kNot, DataType::kBool, std::move(child));
    }
    // Negation.
    if (!IsNumericType(child->type) || child->type == DataType::kIp) {
      return Status::TypeError("unary '-' requires a numeric operand");
    }
    DataType type =
        child->type == DataType::kUint ? DataType::kInt : child->type;
    child = MakeCastIr(std::move(child), type);
    return MakeUnaryIr(UnaryOp::kNeg, type, std::move(child));
  }

  Result<IrPtr> CheckBinary(const gsql::BinaryExpr& binary) {
    GS_ASSIGN_OR_RETURN(IrPtr left, Check(binary.left));
    GS_ASSIGN_OR_RETURN(IrPtr right, Check(binary.right));

    if (IsLogical(binary.op)) {
      if (left->type != DataType::kBool || right->type != DataType::kBool) {
        return Status::TypeError(
            std::string(gsql::BinaryOpName(binary.op)) +
            " requires BOOL operands");
      }
      return MakeBinaryIr(binary.op, DataType::kBool, std::move(left),
                          std::move(right));
    }

    if (IsComparison(binary.op)) {
      if (left->type == DataType::kString ||
          right->type == DataType::kString) {
        if (left->type != right->type) {
          return Status::TypeError("cannot compare STRING with " +
                                   std::string(gsql::DataTypeName(
                                       left->type == DataType::kString
                                           ? right->type
                                           : left->type)));
        }
        return MakeBinaryIr(binary.op, DataType::kBool, std::move(left),
                            std::move(right));
      }
      if (left->type == DataType::kBool || right->type == DataType::kBool) {
        if (left->type != right->type ||
            (binary.op != BinaryOp::kEq && binary.op != BinaryOp::kNeq)) {
          return Status::TypeError("BOOL supports only = and <> comparisons");
        }
        return MakeBinaryIr(binary.op, DataType::kBool, std::move(left),
                            std::move(right));
      }
      // IP = IP comparisons stay in IP; mixed numerics promote.
      DataType common;
      if (left->type == DataType::kIp && right->type == DataType::kIp) {
        common = DataType::kIp;
      } else {
        GS_ASSIGN_OR_RETURN(common, PromoteNumeric(left->type, right->type));
      }
      left = MakeCastIr(std::move(left), common);
      right = MakeCastIr(std::move(right), common);
      return MakeBinaryIr(binary.op, DataType::kBool, std::move(left),
                          std::move(right));
    }

    if (IsBitwise(binary.op)) {
      if ((left->type != DataType::kInt && left->type != DataType::kUint &&
           left->type != DataType::kIp) ||
          (right->type != DataType::kInt && right->type != DataType::kUint &&
           right->type != DataType::kIp)) {
        return Status::TypeError("bitwise operators require integer operands");
      }
      GS_ASSIGN_OR_RETURN(DataType common,
                          PromoteNumeric(left->type, right->type));
      left = MakeCastIr(std::move(left), common);
      right = MakeCastIr(std::move(right), common);
      return MakeBinaryIr(binary.op, common, std::move(left),
                          std::move(right));
    }

    // Arithmetic.
    GS_ASSIGN_OR_RETURN(DataType common,
                        PromoteNumeric(left->type, right->type));
    if (common == DataType::kIp) common = DataType::kUint;
    left = MakeCastIr(std::move(left), common);
    right = MakeCastIr(std::move(right), common);
    if (binary.op == BinaryOp::kMod && common == DataType::kFloat) {
      return Status::TypeError("'%' requires integer operands");
    }
    return MakeBinaryIr(binary.op, common, std::move(left), std::move(right));
  }

  const TypeCheckContext& ctx_;
};

}  // namespace

Result<IrPtr> TypeCheck(const gsql::ExprPtr& expr,
                        const TypeCheckContext& ctx) {
  Checker checker(ctx);
  return checker.Check(expr);
}

Result<IrPtr> TypeCheckPredicate(const gsql::ExprPtr& expr,
                                 const TypeCheckContext& ctx) {
  GS_ASSIGN_OR_RETURN(IrPtr ir, TypeCheck(expr, ctx));
  if (ir->type != DataType::kBool) {
    return Status::TypeError("predicate must be BOOL, got " +
                             std::string(gsql::DataTypeName(ir->type)));
  }
  return ir;
}

}  // namespace gigascope::expr
