#ifndef GIGASCOPE_EXPR_TYPE_H_
#define GIGASCOPE_EXPR_TYPE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "gsql/schema.h"

namespace gigascope::expr {

using gsql::DataType;

/// A runtime scalar value flowing through tuples and the expression VM.
///
/// Plain tagged struct rather than std::variant: the VM switches on the
/// static type of each instruction, so it rarely inspects the tag, and the
/// flat layout keeps value stacks cache-friendly.
class Value {
 public:
  Value() : type_(DataType::kInt), int_(0) {}

  static Value Bool(bool v);
  static Value Int(int64_t v);
  static Value Uint(uint64_t v);
  static Value Float(double v);
  static Value String(std::string v);
  static Value Ip(uint32_t v);

  /// Zero/empty value of the given type.
  static Value Default(DataType type);

  DataType type() const { return type_; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  uint64_t uint_value() const { return uint_; }
  double float_value() const { return float_; }
  const std::string& string_value() const { return string_; }
  uint32_t ip_value() const { return static_cast<uint32_t>(uint_); }

  /// Numeric view as double (for AVG and float arithmetic).
  double AsDouble() const;

  /// Three-way comparison with a value of the same type: -1, 0, +1.
  /// Comparing different types is a programmer error (checked).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const {
    return type_ == other.type_ && Compare(other) == 0;
  }

  /// Stable hash (used for group keys).
  uint64_t Hash() const;

  std::string ToString() const;

 private:
  DataType type_;
  union {
    bool bool_;
    int64_t int_;
    uint64_t uint_;
    double float_;
  };
  std::string string_;
};

/// True when `type` is numeric (arithmetic is defined on it).
bool IsNumericType(DataType type);

/// Binary numeric promotion: float wins, then uint, then int. IP promotes
/// to uint. Returns TypeError for non-numeric operands.
Result<DataType> PromoteNumeric(DataType left, DataType right);

/// Casts `value` to `target`, when a lossless-enough conversion exists
/// (numeric widenings, IP<->UINT). Fails for string<->numeric.
Result<Value> CastValue(const Value& value, DataType target);

/// Saturating double→integer conversions: NaN maps to 0, values outside the
/// target range clamp to its limits, everything else truncates toward zero.
/// Shared contract between CastValue and the native tier's generated code —
/// both sides must produce bit-identical results (see DESIGN.md §15).
int64_t SaturatingDoubleToInt64(double v);
uint64_t SaturatingDoubleToUint64(double v);

}  // namespace gigascope::expr

#endif  // GIGASCOPE_EXPR_TYPE_H_
