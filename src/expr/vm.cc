#include "expr/vm.h"

#include "common/logging.h"
#include "expr/native.h"

namespace gigascope::expr {

namespace {

Status ArithmeticOp(ByteOp op, const Value& left, const Value& right,
                    Value* out) {
  GS_CHECK(left.type() == right.type());
  switch (left.type()) {
    case DataType::kInt: {
      int64_t a = left.int_value();
      int64_t b = right.int_value();
      // Signed add/sub/mul wrap two's-complement (via the uint64 round-trip,
      // defined behavior) and INT64_MIN / -1 is a counted eval error rather
      // than a SIGFPE. The native tier's generated code mirrors these
      // semantics instruction for instruction (DESIGN.md §15); change them
      // only in both places at once.
      uint64_t ua = static_cast<uint64_t>(a);
      uint64_t ub = static_cast<uint64_t>(b);
      switch (op) {
        case ByteOp::kAdd:
          *out = Value::Int(static_cast<int64_t>(ua + ub));
          return Status::Ok();
        case ByteOp::kSub:
          *out = Value::Int(static_cast<int64_t>(ua - ub));
          return Status::Ok();
        case ByteOp::kMul:
          *out = Value::Int(static_cast<int64_t>(ua * ub));
          return Status::Ok();
        case ByteOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          if (a == INT64_MIN && b == -1) {
            return Status::InvalidArgument("integer division overflow");
          }
          *out = Value::Int(a / b);
          return Status::Ok();
        case ByteOp::kMod:
          if (b == 0) return Status::InvalidArgument("modulo by zero");
          if (a == INT64_MIN && b == -1) {
            return Status::InvalidArgument("integer modulo overflow");
          }
          *out = Value::Int(a % b);
          return Status::Ok();
        case ByteOp::kBitAnd: *out = Value::Int(a & b); return Status::Ok();
        case ByteOp::kBitOr: *out = Value::Int(a | b); return Status::Ok();
        default:
          break;
      }
      break;
    }
    case DataType::kUint: {
      uint64_t a = left.uint_value();
      uint64_t b = right.uint_value();
      switch (op) {
        case ByteOp::kAdd: *out = Value::Uint(a + b); return Status::Ok();
        case ByteOp::kSub: *out = Value::Uint(a - b); return Status::Ok();
        case ByteOp::kMul: *out = Value::Uint(a * b); return Status::Ok();
        case ByteOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          *out = Value::Uint(a / b);
          return Status::Ok();
        case ByteOp::kMod:
          if (b == 0) return Status::InvalidArgument("modulo by zero");
          *out = Value::Uint(a % b);
          return Status::Ok();
        case ByteOp::kBitAnd: *out = Value::Uint(a & b); return Status::Ok();
        case ByteOp::kBitOr: *out = Value::Uint(a | b); return Status::Ok();
        default:
          break;
      }
      break;
    }
    case DataType::kFloat: {
      double a = left.float_value();
      double b = right.float_value();
      switch (op) {
        case ByteOp::kAdd: *out = Value::Float(a + b); return Status::Ok();
        case ByteOp::kSub: *out = Value::Float(a - b); return Status::Ok();
        case ByteOp::kMul: *out = Value::Float(a * b); return Status::Ok();
        case ByteOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          *out = Value::Float(a / b);
          return Status::Ok();
        default:
          break;
      }
      break;
    }
    default:
      break;
  }
  return Status::Internal("arithmetic on unsupported type");
}

bool CompareOp(ByteOp op, const Value& left, const Value& right) {
  int cmp = left.Compare(right);
  switch (op) {
    case ByteOp::kCmpEq: return cmp == 0;
    case ByteOp::kCmpNe: return cmp != 0;
    case ByteOp::kCmpLt: return cmp < 0;
    case ByteOp::kCmpLe: return cmp <= 0;
    case ByteOp::kCmpGt: return cmp > 0;
    case ByteOp::kCmpGe: return cmp >= 0;
    default:
      return false;
  }
}

/// Shared evaluation core: `stack` is caller-provided scratch (cleared
/// here), so a reusable Evaluator can amortize its allocation across a
/// batch while the free functions keep a per-call stack.
Status EvalWithStack(const CompiledExpr& expr, const EvalContext& ctx,
                     EvalOutput* out, std::vector<Value>& stack) {
  stack.clear();
  stack.reserve(expr.max_stack);
  out->has_value = true;

  for (const Instr& instr : expr.code) {
    switch (instr.op) {
      case ByteOp::kPushConst:
        stack.push_back(expr.constants[instr.a]);
        break;
      case ByteOp::kLoadField: {
        const std::vector<Value>* row = instr.a == 0 ? ctx.row0 : ctx.row1;
        if (row == nullptr || instr.b >= row->size()) {
          return Status::Internal("field load outside the input row");
        }
        stack.push_back((*row)[instr.b]);
        break;
      }
      case ByteOp::kLoadParam:
        if (ctx.params == nullptr || instr.a >= ctx.params->size()) {
          return Status::Internal("parameter slot out of range");
        }
        stack.push_back((*ctx.params)[instr.a]);
        break;
      case ByteOp::kCall: {
        const CallSite& site = expr.calls[instr.a];
        size_t arity = site.handles.size();
        std::vector<Value> args(arity);
        // Stack args fill the non-handle positions right-to-left.
        for (size_t i = arity; i-- > 0;) {
          if (site.handles[i] == nullptr) {
            args[i] = std::move(stack.back());
            stack.pop_back();
          }
        }
        Value result;
        bool has_result = true;
        GS_RETURN_IF_ERROR(
            site.fn->invoke(args, site.handles, &result, &has_result));
        if (!has_result) {
          if (!site.fn->partial) {
            return Status::Internal("non-partial function '" + site.fn->name +
                                    "' returned no result");
          }
          out->has_value = false;
          return Status::Ok();
        }
        stack.push_back(std::move(result));
        break;
      }
      case ByteOp::kNeg: {
        Value& top = stack.back();
        if (top.type() == DataType::kInt) {
          // Wrapping negation: -INT64_MIN stays INT64_MIN, no UB.
          top = Value::Int(
              static_cast<int64_t>(-static_cast<uint64_t>(top.int_value())));
        } else if (top.type() == DataType::kFloat) {
          top = Value::Float(-top.float_value());
        } else {
          return Status::Internal("negation of unsupported type");
        }
        break;
      }
      case ByteOp::kNot: {
        Value& top = stack.back();
        top = Value::Bool(!top.bool_value());
        break;
      }
      case ByteOp::kCast: {
        GS_ASSIGN_OR_RETURN(
            Value casted,
            CastValue(stack.back(), static_cast<DataType>(instr.a)));
        stack.back() = std::move(casted);
        break;
      }
      case ByteOp::kAnd:
      case ByteOp::kOr: {
        Value right = std::move(stack.back());
        stack.pop_back();
        Value& left = stack.back();
        bool result = instr.op == ByteOp::kAnd
                          ? (left.bool_value() && right.bool_value())
                          : (left.bool_value() || right.bool_value());
        left = Value::Bool(result);
        break;
      }
      case ByteOp::kCmpEq:
      case ByteOp::kCmpNe:
      case ByteOp::kCmpLt:
      case ByteOp::kCmpLe:
      case ByteOp::kCmpGt:
      case ByteOp::kCmpGe: {
        Value right = std::move(stack.back());
        stack.pop_back();
        Value& left = stack.back();
        left = Value::Bool(CompareOp(instr.op, left, right));
        break;
      }
      default: {
        Value right = std::move(stack.back());
        stack.pop_back();
        Value& left = stack.back();
        Value result;
        GS_RETURN_IF_ERROR(ArithmeticOp(instr.op, left, right, &result));
        left = std::move(result);
        break;
      }
    }
  }
  if (stack.size() != 1) {
    return Status::Internal("expression stack imbalance");
  }
  out->value = std::move(stack.back());
  return Status::Ok();
}

}  // namespace

Status Eval(const CompiledExpr& expr, const EvalContext& ctx,
            EvalOutput* out) {
  std::vector<Value> stack;
  return EvalWithStack(expr, ctx, out, stack);
}

bool EvalPredicate(const CompiledExpr& expr, const EvalContext& ctx) {
  EvalOutput out;
  Status status = Eval(expr, ctx, &out);
  if (!status.ok() || !out.has_value) return false;
  return out.value.bool_value();
}

Status Evaluator::Eval(const CompiledExpr& expr, const EvalContext& ctx,
                       EvalOutput* out) {
  // Native-tier fast path: the jit engine publishes a kernel into the slot
  // with a release store; operators observe it here mid-run (async mode
  // hot-swap). Falls through to the VM until (and unless) a kernel lands.
  if (expr.native != nullptr) {
    NativeKernel* kernel =
        expr.native->kernel.load(std::memory_order_acquire);
    if (kernel != nullptr) return kernel->Eval(ctx, out);
  }
  return EvalWithStack(expr, ctx, out, stack_);
}

bool Evaluator::EvalPredicate(const CompiledExpr& expr,
                              const EvalContext& ctx) {
  EvalOutput out;
  Status status = Eval(expr, ctx, &out);
  if (!status.ok() || !out.has_value) return false;
  return out.value.bool_value();
}

std::optional<std::vector<FilterTerm>> MatchFilterTerms(
    const CompiledExpr& expr) {
  auto is_compare = [](ByteOp op) {
    switch (op) {
      case ByteOp::kCmpEq:
      case ByteOp::kCmpNe:
      case ByteOp::kCmpLt:
      case ByteOp::kCmpLe:
      case ByteOp::kCmpGt:
      case ByteOp::kCmpGe:
        return true;
      default:
        return false;
    }
  };
  const std::vector<Instr>& code = expr.code;
  std::vector<FilterTerm> terms;
  size_t i = 0;
  auto parse_term = [&]() {
    if (i + 3 > code.size()) return false;
    if (code[i].op != ByteOp::kLoadField || code[i].a != 0) return false;
    if (code[i + 1].op != ByteOp::kPushConst ||
        code[i + 1].a >= expr.constants.size()) {
      return false;
    }
    if (!is_compare(code[i + 2].op)) return false;
    FilterTerm term;
    term.field = code[i].b;
    term.cmp = code[i + 2].op;
    term.constant = expr.constants[code[i + 1].a];
    terms.push_back(std::move(term));
    i += 3;
    return true;
  };
  // `a AND b AND c` compiles left-associated: term, (term, kAnd)*.
  if (!parse_term()) return std::nullopt;
  while (i < code.size()) {
    if (!parse_term()) return std::nullopt;
    if (i >= code.size() || code[i].op != ByteOp::kAnd) return std::nullopt;
    ++i;
  }
  return terms;
}

}  // namespace gigascope::expr
