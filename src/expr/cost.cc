#include "expr/cost.h"

namespace gigascope::expr {

double EstimateCost(const IrPtr& ir) {
  if (ir == nullptr) return 0;
  double cost = 0;
  switch (ir->kind) {
    case IrKind::kConst:
    case IrKind::kParam:
      cost = 0;  // resolved into the instruction stream / parameter block
      break;
    case IrKind::kField:
      cost = 1;  // one tuple field access
      break;
    case IrKind::kCast:
    case IrKind::kUnary:
      cost = 1;
      break;
    case IrKind::kBinary:
      // String comparisons are length-dependent; charge a flat premium.
      cost = ir->children[0]->type == DataType::kString ? 8 : 1;
      break;
    case IrKind::kCall:
      cost = ir->fn != nullptr ? ir->fn->cost : 100;
      break;
  }
  for (const IrPtr& child : ir->children) cost += EstimateCost(child);
  return cost;
}

namespace {

bool AllCallsLftaSafe(const IrPtr& ir) {
  if (ir == nullptr) return true;
  if (ir->kind == IrKind::kCall &&
      (ir->fn == nullptr || !ir->fn->lfta_safe)) {
    return false;
  }
  for (const IrPtr& child : ir->children) {
    if (!AllCallsLftaSafe(child)) return false;
  }
  return true;
}

}  // namespace

bool IsLftaSafe(const IrPtr& ir) {
  if (ir == nullptr) return true;
  return AllCallsLftaSafe(ir) && EstimateCost(ir) <= kLftaCostBudget;
}

}  // namespace gigascope::expr
