#ifndef GIGASCOPE_EXPR_TYPECHECK_H_
#define GIGASCOPE_EXPR_TYPECHECK_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "expr/ir.h"
#include "gsql/analyzer.h"

namespace gigascope::expr {

/// Everything the type checker needs to turn an analyzed AST expression
/// into typed IR.
struct TypeCheckContext {
  /// Positional input schemas (1 for scan/aggregate, 2 for join).
  std::vector<gsql::StreamSchema> inputs;

  /// Column bindings produced by the analyzer.
  const std::map<const gsql::Expr*, gsql::ColumnBinding>* bindings = nullptr;

  /// Function registry; may be null when the query uses no UDFs.
  const FunctionResolver* resolver = nullptr;

  /// Declared query parameters in slot order.
  std::vector<std::pair<std::string, DataType>> params;
};

/// Type checks an expression: resolves column/param/function types, applies
/// numeric promotion, and inserts casts. Aggregate calls are rejected here —
/// the planner extracts them before scalar type checking.
Result<IrPtr> TypeCheck(const gsql::ExprPtr& expr,
                        const TypeCheckContext& ctx);

/// Type checks an expression that must produce a BOOL (WHERE / HAVING).
Result<IrPtr> TypeCheckPredicate(const gsql::ExprPtr& expr,
                                 const TypeCheckContext& ctx);

}  // namespace gigascope::expr

#endif  // GIGASCOPE_EXPR_TYPECHECK_H_
