#include "expr/ir.h"

#include <algorithm>

namespace gigascope::expr {

std::string IrNode::ToString() const {
  switch (kind) {
    case IrKind::kConst:
      return constant.ToString();
    case IrKind::kField:
      return "$in" + std::to_string(input) + "." + name;
    case IrKind::kParam:
      return "$param:" + name;
    case IrKind::kCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case IrKind::kUnary:
      return std::string(unary_op == gsql::UnaryOp::kNeg ? "-" : "NOT ") +
             children[0]->ToString();
    case IrKind::kBinary:
      return "(" + children[0]->ToString() + " " +
             gsql::BinaryOpName(binary_op) + " " + children[1]->ToString() +
             ")";
    case IrKind::kCast:
      return std::string("cast<") + gsql::DataTypeName(type) + ">(" +
             children[0]->ToString() + ")";
  }
  return "?";
}

IrPtr MakeConst(Value value) {
  auto node = std::make_shared<IrNode>();
  node->kind = IrKind::kConst;
  node->type = value.type();
  node->constant = std::move(value);
  return node;
}

IrPtr MakeFieldRef(size_t input, size_t field, DataType type,
                   std::string name) {
  auto node = std::make_shared<IrNode>();
  node->kind = IrKind::kField;
  node->type = type;
  node->input = input;
  node->field = field;
  node->name = std::move(name);
  return node;
}

IrPtr MakeParamRef(size_t param_index, DataType type, std::string name) {
  auto node = std::make_shared<IrNode>();
  node->kind = IrKind::kParam;
  node->type = type;
  node->param_index = param_index;
  node->name = std::move(name);
  return node;
}

IrPtr MakeCastIr(IrPtr child, DataType target) {
  if (child->type == target) return child;
  auto node = std::make_shared<IrNode>();
  node->kind = IrKind::kCast;
  node->type = target;
  node->children.push_back(std::move(child));
  return node;
}

IrPtr MakeBinaryIr(gsql::BinaryOp op, DataType type, IrPtr left, IrPtr right) {
  auto node = std::make_shared<IrNode>();
  node->kind = IrKind::kBinary;
  node->type = type;
  node->binary_op = op;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

IrPtr MakeUnaryIr(gsql::UnaryOp op, DataType type, IrPtr child) {
  auto node = std::make_shared<IrNode>();
  node->kind = IrKind::kUnary;
  node->type = type;
  node->unary_op = op;
  node->children.push_back(std::move(child));
  return node;
}

IrPtr MakeCallIr(const FunctionInfo* fn, std::vector<IrPtr> args) {
  auto node = std::make_shared<IrNode>();
  node->kind = IrKind::kCall;
  node->type = fn->return_type;
  node->fn = fn;
  node->name = fn->name;
  node->children = std::move(args);
  return node;
}

namespace {

bool AnyNode(const IrPtr& ir, const std::function<bool(const IrNode&)>& pred) {
  if (ir == nullptr) return false;
  if (pred(*ir)) return true;
  for (const IrPtr& child : ir->children) {
    if (AnyNode(child, pred)) return true;
  }
  return false;
}

}  // namespace

bool ReferencesInput(const IrPtr& ir, size_t input) {
  return AnyNode(ir, [input](const IrNode& node) {
    return node.kind == IrKind::kField && node.input == input;
  });
}

bool ReferencesAnyField(const IrPtr& ir) {
  return AnyNode(ir, [](const IrNode& node) {
    return node.kind == IrKind::kField;
  });
}

bool ContainsCall(const IrPtr& ir) {
  return AnyNode(ir,
                 [](const IrNode& node) { return node.kind == IrKind::kCall; });
}

bool ContainsPartialCall(const IrPtr& ir) {
  return AnyNode(ir, [](const IrNode& node) {
    return node.kind == IrKind::kCall && node.fn != nullptr &&
           node.fn->partial;
  });
}

void CollectFieldRefs(const IrPtr& ir,
                      std::vector<std::pair<size_t, size_t>>* out) {
  if (ir == nullptr) return;
  if (ir->kind == IrKind::kField) {
    auto key = std::make_pair(ir->input, ir->field);
    if (std::find(out->begin(), out->end(), key) == out->end()) {
      out->push_back(key);
    }
  }
  for (const IrPtr& child : ir->children) CollectFieldRefs(child, out);
}

IrPtr CloneIr(
    const IrPtr& ir,
    const std::function<std::pair<size_t, size_t>(size_t, size_t)>& remap) {
  if (ir == nullptr) return nullptr;
  auto copy = std::make_shared<IrNode>(*ir);
  if (copy->kind == IrKind::kField && remap != nullptr) {
    auto [input, field] = remap(copy->input, copy->field);
    copy->input = input;
    copy->field = field;
  }
  copy->children.clear();
  for (const IrPtr& child : ir->children) {
    copy->children.push_back(CloneIr(child, remap));
  }
  return copy;
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kAvg: return "avg";
  }
  return "?";
}

std::string AggregateSpec::ToString() const {
  std::string out = AggFnName(fn);
  out += "(";
  out += arg == nullptr ? "*" : arg->ToString();
  out += ")";
  return out;
}

}  // namespace gigascope::expr
