#include "expr/codegen.h"

#include <algorithm>

namespace gigascope::expr {

namespace {

using gsql::BinaryOp;
using gsql::UnaryOp;

const char* ByteOpName(ByteOp op) {
  switch (op) {
    case ByteOp::kPushConst: return "push_const";
    case ByteOp::kLoadField: return "load_field";
    case ByteOp::kLoadParam: return "load_param";
    case ByteOp::kCall: return "call";
    case ByteOp::kAdd: return "add";
    case ByteOp::kSub: return "sub";
    case ByteOp::kMul: return "mul";
    case ByteOp::kDiv: return "div";
    case ByteOp::kMod: return "mod";
    case ByteOp::kBitAnd: return "bitand";
    case ByteOp::kBitOr: return "bitor";
    case ByteOp::kNeg: return "neg";
    case ByteOp::kNot: return "not";
    case ByteOp::kCmpEq: return "cmpeq";
    case ByteOp::kCmpNe: return "cmpne";
    case ByteOp::kCmpLt: return "cmplt";
    case ByteOp::kCmpLe: return "cmple";
    case ByteOp::kCmpGt: return "cmpgt";
    case ByteOp::kCmpGe: return "cmpge";
    case ByteOp::kAnd: return "and";
    case ByteOp::kOr: return "or";
    case ByteOp::kCast: return "cast";
  }
  return "?";
}

ByteOp BinaryToByteOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return ByteOp::kAdd;
    case BinaryOp::kSub: return ByteOp::kSub;
    case BinaryOp::kMul: return ByteOp::kMul;
    case BinaryOp::kDiv: return ByteOp::kDiv;
    case BinaryOp::kMod: return ByteOp::kMod;
    case BinaryOp::kBitAnd: return ByteOp::kBitAnd;
    case BinaryOp::kBitOr: return ByteOp::kBitOr;
    case BinaryOp::kEq: return ByteOp::kCmpEq;
    case BinaryOp::kNeq: return ByteOp::kCmpNe;
    case BinaryOp::kLt: return ByteOp::kCmpLt;
    case BinaryOp::kLe: return ByteOp::kCmpLe;
    case BinaryOp::kGt: return ByteOp::kCmpGt;
    case BinaryOp::kGe: return ByteOp::kCmpGe;
    case BinaryOp::kAnd: return ByteOp::kAnd;
    case BinaryOp::kOr: return ByteOp::kOr;
  }
  return ByteOp::kAdd;
}

class Generator {
 public:
  explicit Generator(const std::vector<Value>& param_values)
      : param_values_(param_values) {}

  Result<CompiledExpr> Run(const IrPtr& ir) {
    GS_RETURN_IF_ERROR(Emit(ir));
    out_.result_type = ir->type;
    out_.max_stack = max_depth_;
    return std::move(out_);
  }

 private:
  void Push(Instr instr) {
    out_.code.push_back(instr);
  }

  void TrackDepth(int delta) {
    depth_ += delta;
    max_depth_ = std::max(max_depth_, static_cast<size_t>(std::max(0, depth_)));
  }

  uint16_t AddConstant(Value value) {
    out_.constants.push_back(std::move(value));
    return static_cast<uint16_t>(out_.constants.size() - 1);
  }

  Status Emit(const IrPtr& ir) {
    switch (ir->kind) {
      case IrKind::kConst: {
        uint16_t index = AddConstant(ir->constant);
        Push({ByteOp::kPushConst, index, 0});
        TrackDepth(1);
        return Status::Ok();
      }
      case IrKind::kField:
        Push({ByteOp::kLoadField, static_cast<uint16_t>(ir->input),
              static_cast<uint16_t>(ir->field)});
        out_.load_types.push_back(ir->type);
        TrackDepth(1);
        return Status::Ok();
      case IrKind::kParam:
        Push({ByteOp::kLoadParam, static_cast<uint16_t>(ir->param_index), 0});
        out_.load_types.push_back(ir->type);
        TrackDepth(1);
        return Status::Ok();
      case IrKind::kCast: {
        GS_RETURN_IF_ERROR(Emit(ir->children[0]));
        Push({ByteOp::kCast, static_cast<uint16_t>(ir->type), 0});
        return Status::Ok();
      }
      case IrKind::kUnary: {
        GS_RETURN_IF_ERROR(Emit(ir->children[0]));
        Push({ir->unary_op == UnaryOp::kNeg ? ByteOp::kNeg : ByteOp::kNot, 0,
              0});
        return Status::Ok();
      }
      case IrKind::kBinary: {
        GS_RETURN_IF_ERROR(Emit(ir->children[0]));
        GS_RETURN_IF_ERROR(Emit(ir->children[1]));
        Push({BinaryToByteOp(ir->binary_op), 0, 0});
        TrackDepth(-1);
        return Status::Ok();
      }
      case IrKind::kCall:
        return EmitCall(ir);
    }
    return Status::Internal("unknown IR node in codegen");
  }

  Status EmitCall(const IrPtr& ir) {
    const FunctionInfo* fn = ir->fn;
    CallSite site;
    site.fn = fn;
    site.handles.resize(ir->children.size());
    uint16_t stack_args = 0;
    for (size_t i = 0; i < ir->children.size(); ++i) {
      bool is_handle =
          i < fn->pass_by_handle.size() && fn->pass_by_handle[i];
      if (is_handle) {
        GS_ASSIGN_OR_RETURN(Value literal, HandleLiteral(ir->children[i]));
        if (fn->make_handle == nullptr) {
          return Status::Internal("function '" + fn->name +
                                  "' declares a handle argument but has no "
                                  "handle builder");
        }
        GS_ASSIGN_OR_RETURN(site.handles[i], fn->make_handle(literal));
      } else {
        GS_RETURN_IF_ERROR(Emit(ir->children[i]));
        ++stack_args;
      }
    }
    site.stack_args = stack_args;
    out_.calls.push_back(std::move(site));
    Push({ByteOp::kCall, static_cast<uint16_t>(out_.calls.size() - 1), 0});
    TrackDepth(1 - static_cast<int>(stack_args));
    return Status::Ok();
  }

  Result<Value> HandleLiteral(const IrPtr& arg) {
    if (arg->kind == IrKind::kConst) return arg->constant;
    if (arg->kind == IrKind::kParam) {
      if (arg->param_index >= param_values_.size()) {
        return Status::InvalidArgument(
            "pass-by-handle argument '$" + arg->name +
            "' has no instantiation-time value");
      }
      return param_values_[arg->param_index];
    }
    // A cast of a literal is still resolvable.
    if (arg->kind == IrKind::kCast && arg->children[0]->kind == IrKind::kConst) {
      return CastValue(arg->children[0]->constant, arg->type);
    }
    return Status::InvalidArgument(
        "pass-by-handle argument must be a literal or query parameter");
  }

  const std::vector<Value>& param_values_;
  CompiledExpr out_;
  int depth_ = 0;
  size_t max_depth_ = 0;
};

}  // namespace

std::string CompiledExpr::Disassemble() const {
  std::string out;
  for (size_t i = 0; i < code.size(); ++i) {
    const Instr& instr = code[i];
    out += std::to_string(i) + ": " + ByteOpName(instr.op);
    switch (instr.op) {
      case ByteOp::kPushConst:
        out += " " + constants[instr.a].ToString();
        break;
      case ByteOp::kLoadField:
        out += " in" + std::to_string(instr.a) + "[" + std::to_string(instr.b) +
               "]";
        break;
      case ByteOp::kLoadParam:
        out += " p" + std::to_string(instr.a);
        break;
      case ByteOp::kCall:
        out += " " + calls[instr.a].fn->name;
        break;
      case ByteOp::kCast:
        out += std::string(" ") +
               gsql::DataTypeName(static_cast<DataType>(instr.a));
        break;
      default:
        break;
    }
    out += "\n";
  }
  return out;
}

Result<CompiledExpr> Compile(const IrPtr& ir,
                             const std::vector<Value>& param_values) {
  if (ir == nullptr) return Status::Internal("cannot compile null IR");
  Generator generator(param_values);
  return generator.Run(ir);
}

}  // namespace gigascope::expr
