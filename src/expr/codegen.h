#ifndef GIGASCOPE_EXPR_CODEGEN_H_
#define GIGASCOPE_EXPR_CODEGEN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/ir.h"

namespace gigascope::expr {

/// Bytecode operations for the expression VM.
///
/// The paper's GSQL processor generates C/C++ per query; this repository
/// generates compact stack bytecode instead (see DESIGN.md §3). The codegen
/// still runs once per query at compile time, producing a self-contained
/// artifact with resolved constants, call sites, and pre-built handles.
enum class ByteOp : uint8_t {
  kPushConst,  // a: constant-pool index
  kLoadField,  // a: input (0/1), b: field index
  kLoadParam,  // a: parameter slot
  kCall,       // a: call-site index
  kAdd, kSub, kMul, kDiv, kMod, kBitAnd, kBitOr,
  kNeg, kNot,
  kCmpEq, kCmpNe, kCmpLt, kCmpLe, kCmpGt, kCmpGe,
  kAnd, kOr,
  kCast,       // a: target DataType
};

struct Instr {
  ByteOp op;
  uint16_t a = 0;
  uint16_t b = 0;
};

/// One resolved function call: descriptor plus pre-processed handles for
/// pass-by-handle arguments (built once at compile time — the paper's
/// "parameter handle registration function").
struct CallSite {
  const FunctionInfo* fn = nullptr;
  /// Size = arity; non-null exactly at pass-by-handle positions.
  std::vector<std::shared_ptr<void>> handles;
  /// Number of arguments taken from the VM stack (arity minus handles).
  uint16_t stack_args = 0;
};

class NativeKernel;  // expr/native.h

/// Lock-free publication slot for a native (transpiled) kernel. The jit
/// tier attaches one to a CompiledExpr, then hot-swaps the kernel in with a
/// release store once the shared object is loaded; `Evaluator` picks it up
/// with an acquire load on the next evaluation. The pointed-to kernel is
/// owned by the jit engine and outlives every operator that may read it.
struct KernelSlot {
  std::atomic<NativeKernel*> kernel{nullptr};
};

/// A compiled, immediately executable expression.
struct CompiledExpr {
  DataType result_type = DataType::kInt;
  std::vector<Instr> code;
  std::vector<Value> constants;
  std::vector<CallSite> calls;
  /// Upper bound of the value stack during evaluation.
  size_t max_stack = 0;
  /// Static type of each kLoadField / kLoadParam in code order — enough
  /// type information for the native tier to transpile without re-plumbing
  /// the schema (the bytecode itself is untyped).
  std::vector<DataType> load_types;
  /// Native-tier slot; null until (and unless) the jit tier requests this
  /// expression. Shared so copies of the expression see the same swap.
  std::shared_ptr<KernelSlot> native;

  std::string Disassemble() const;
};

/// Counts a compiled expression toward EXPLAIN ANALYZE's actual-tier
/// numbers: `total` += 1 when the jit tier requested a kernel slot for it,
/// `native` += 1 when a compiled kernel is currently published into that
/// slot. Safe from any thread (acquire load on the slot).
inline void CountKernelSlot(const CompiledExpr& expr, size_t* native,
                            size_t* total) {
  if (expr.native == nullptr) return;
  ++*total;
  if (expr.native->kernel.load(std::memory_order_acquire) != nullptr) {
    ++*native;
  }
}

/// Compiles typed IR to bytecode. `param_values` supplies instantiation-time
/// parameter values, needed only to build handles for pass-by-handle
/// arguments that are query parameters.
Result<CompiledExpr> Compile(const IrPtr& ir,
                             const std::vector<Value>& param_values = {});

}  // namespace gigascope::expr

#endif  // GIGASCOPE_EXPR_CODEGEN_H_
