#ifndef GIGASCOPE_EXPR_VM_H_
#define GIGASCOPE_EXPR_VM_H_

#include <vector>

#include "expr/codegen.h"

namespace gigascope::expr {

/// Inputs to one expression evaluation: up to two tuples (as unpacked value
/// rows) and the current query-parameter block.
struct EvalContext {
  const std::vector<Value>* row0 = nullptr;
  const std::vector<Value>* row1 = nullptr;
  const std::vector<Value>* params = nullptr;
};

/// Result of one evaluation. `has_value == false` means a partial function
/// produced no result: the tuple being processed must be discarded (§2.2).
struct EvalOutput {
  bool has_value = true;
  Value value;
};

/// Evaluates a compiled expression. Runtime failures (division by zero,
/// missing field row, function error) return a non-OK status; operators
/// treat such tuples as malformed and drop them.
Status Eval(const CompiledExpr& expr, const EvalContext& ctx,
            EvalOutput* out);

/// Evaluates a BOOL expression as a predicate. A missing value (partial
/// function miss) and a runtime error both yield `false`.
bool EvalPredicate(const CompiledExpr& expr, const EvalContext& ctx);

}  // namespace gigascope::expr

#endif  // GIGASCOPE_EXPR_VM_H_
