#ifndef GIGASCOPE_EXPR_VM_H_
#define GIGASCOPE_EXPR_VM_H_

#include <optional>
#include <vector>

#include "expr/codegen.h"

namespace gigascope::expr {

/// Inputs to one expression evaluation: up to two tuples (as unpacked value
/// rows) and the current query-parameter block.
struct EvalContext {
  const std::vector<Value>* row0 = nullptr;
  const std::vector<Value>* row1 = nullptr;
  const std::vector<Value>* params = nullptr;
};

/// Result of one evaluation. `has_value == false` means a partial function
/// produced no result: the tuple being processed must be discarded (§2.2).
struct EvalOutput {
  bool has_value = true;
  Value value;
};

/// Evaluates a compiled expression. Runtime failures (division by zero,
/// missing field row, function error) return a non-OK status; operators
/// treat such tuples as malformed and drop them.
Status Eval(const CompiledExpr& expr, const EvalContext& ctx,
            EvalOutput* out);

/// Evaluates a BOOL expression as a predicate. A missing value (partial
/// function miss) and a runtime error both yield `false`.
bool EvalPredicate(const CompiledExpr& expr, const EvalContext& ctx);

/// A reusable evaluator for the batch hot path: same semantics as the free
/// functions but the value stack persists across calls, so a batch of N
/// tuples pays one stack allocation instead of N. Owned by exactly one
/// operator and called only from its polling thread.
class Evaluator {
 public:
  Status Eval(const CompiledExpr& expr, const EvalContext& ctx,
              EvalOutput* out);
  bool EvalPredicate(const CompiledExpr& expr, const EvalContext& ctx);

 private:
  std::vector<Value> stack_;
};

/// One conjunct of a filter in `field <cmp> constant` form (the field is
/// always from row0).
struct FilterTerm {
  size_t field = 0;
  ByteOp cmp = ByteOp::kCmpEq;
  Value constant;
};

/// Recognizes predicates of the shape `t1 AND t2 AND ... AND tn` where
/// every term is `LoadField(row0, f); PushConst(c); Cmp*` — the dominant
/// LFTA filter shape after constant folding (`protocol = 6 AND destPort =
/// 80`). Returns the terms in evaluation order, or nullopt for any other
/// bytecode; callers fall back to the general VM. Matching terms evaluate
/// identically to the VM (Value::Compare on same-type operands), which is
/// what lets ops/select_project compare packed bytes directly without
/// decoding the row.
std::optional<std::vector<FilterTerm>> MatchFilterTerms(
    const CompiledExpr& expr);

}  // namespace gigascope::expr

#endif  // GIGASCOPE_EXPR_VM_H_
