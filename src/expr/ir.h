#ifndef GIGASCOPE_EXPR_IR_H_
#define GIGASCOPE_EXPR_IR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "expr/type.h"
#include "gsql/ast.h"

namespace gigascope::expr {

// ---------------------------------------------------------------------------
// Scalar functions (built-ins and user-defined)
// ---------------------------------------------------------------------------

/// Descriptor of a scalar function callable from GSQL (§2.2's function
/// registry). Implementations live in the UDF library; the expression layer
/// only needs this interface.
struct FunctionInfo {
  std::string name;
  DataType return_type = DataType::kInt;
  std::vector<DataType> arg_types;

  /// Partial function: may produce no result, in which case the tuple being
  /// processed is discarded — "the processing is the same as if there is no
  /// result from a join" (§2.2).
  bool partial = false;

  /// Per-argument: pass-by-handle parameters require expensive
  /// pre-processing (e.g. compiling a regex, loading a prefix table) done
  /// once at query instantiation. Such arguments must be literals or query
  /// parameters.
  std::vector<bool> pass_by_handle;

  /// Whether the function is cheap enough to evaluate in an LFTA.
  bool lfta_safe = false;

  /// Abstract per-call cost units (1 = one arithmetic op) for the planner's
  /// cost model.
  double cost = 100;

  /// Builds the pre-processed handle for a pass-by-handle argument.
  std::function<Result<std::shared_ptr<void>>(const Value& literal)>
      make_handle;

  /// Invokes the function. `args` has one entry per declared argument;
  /// entries at pass-by-handle positions are placeholders, with the real
  /// data in `handles` at the same position. Sets `*has_result=false` (only
  /// legal for partial functions) to discard the tuple.
  std::function<Status(const std::vector<Value>& args,
                       const std::vector<std::shared_ptr<void>>& handles,
                       Value* out, bool* has_result)>
      invoke;
};

/// Resolves function names to descriptors during type checking.
class FunctionResolver {
 public:
  virtual ~FunctionResolver() = default;

  /// Returns the function with this (lower-case) name, or NotFound. The
  /// caller retains no ownership; the descriptor must outlive all compiled
  /// queries.
  virtual Result<const FunctionInfo*> Resolve(
      const std::string& name) const = 0;
};

// ---------------------------------------------------------------------------
// Typed intermediate representation
// ---------------------------------------------------------------------------

enum class IrKind : uint8_t {
  kConst,   // literal value
  kField,   // input tuple attribute
  kParam,   // query parameter
  kCall,    // scalar function call
  kUnary,   // NEG / NOT
  kBinary,  // arithmetic / comparison / logic
  kCast,    // type conversion (child 0 -> this->type)
};

struct IrNode;
using IrPtr = std::shared_ptr<IrNode>;

/// One node of the typed expression IR. After type checking every node has
/// a definite `type` and children have been cast where needed.
struct IrNode {
  IrKind kind;
  DataType type = DataType::kInt;

  Value constant;                       // kConst
  size_t input = 0;                     // kField: which input stream (0/1)
  size_t field = 0;                     // kField: attribute index
  std::string name;                     // field/param/function name
  size_t param_index = 0;               // kParam: slot in the param block
  const FunctionInfo* fn = nullptr;     // kCall
  gsql::UnaryOp unary_op{};             // kUnary
  gsql::BinaryOp binary_op{};           // kBinary

  std::vector<IrPtr> children;

  std::string ToString() const;
};

IrPtr MakeConst(Value value);
IrPtr MakeFieldRef(size_t input, size_t field, DataType type,
                   std::string name);
IrPtr MakeParamRef(size_t param_index, DataType type, std::string name);
IrPtr MakeCastIr(IrPtr child, DataType target);
IrPtr MakeBinaryIr(gsql::BinaryOp op, DataType type, IrPtr left, IrPtr right);
IrPtr MakeUnaryIr(gsql::UnaryOp op, DataType type, IrPtr child);
IrPtr MakeCallIr(const FunctionInfo* fn, std::vector<IrPtr> args);

/// True if any node in the tree references a field of input `input`.
bool ReferencesInput(const IrPtr& ir, size_t input);

/// True if the tree references any field at all.
bool ReferencesAnyField(const IrPtr& ir);

/// True if the tree contains a function call.
bool ContainsCall(const IrPtr& ir);

/// True if the tree contains a partial function call (tuple-discarding).
bool ContainsPartialCall(const IrPtr& ir);

/// Collects the distinct (input, field) pairs referenced by the tree.
void CollectFieldRefs(const IrPtr& ir,
                      std::vector<std::pair<size_t, size_t>>* out);

/// Structural deep copy, optionally remapping field references through
/// `remap(input, field) -> (input', field')`.
IrPtr CloneIr(
    const IrPtr& ir,
    const std::function<std::pair<size_t, size_t>(size_t, size_t)>& remap =
        nullptr);

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

/// GSQL aggregate functions. All are decomposable into sub/superaggregates
/// (AVG decomposes as SUM+COUNT), which is what makes the paper's LFTA/HFTA
/// aggregate splitting possible.
enum class AggFn : uint8_t { kCount, kSum, kMin, kMax, kAvg };

const char* AggFnName(AggFn fn);

/// One aggregate in a query: function + scalar argument (null for COUNT(*)).
struct AggregateSpec {
  AggFn fn = AggFn::kCount;
  IrPtr arg;                 // null for COUNT(*)
  DataType result_type = DataType::kUint;

  std::string ToString() const;
};

}  // namespace gigascope::expr

#endif  // GIGASCOPE_EXPR_IR_H_
