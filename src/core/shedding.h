#ifndef GIGASCOPE_CORE_SHEDDING_H_
#define GIGASCOPE_CORE_SHEDDING_H_

#include <cstdint>

#include "common/clock.h"
#include "rts/shed_state.h"
#include "telemetry/counter.h"
#include "telemetry/registry.h"

namespace gigascope::core {

/// Thresholds and ladder parameters of the overload controller.
///
/// The controller compares the engine's own telemetry against these
/// thresholds once per `check_period` of injected time and walks the
/// shedding ladder one rung at a time: escalate immediately on pressure,
/// step down only after `hold_checks` consecutive calm readings (all
/// signals below threshold * recover_fraction) — the hysteresis that keeps
/// a transient burst from flapping the fidelity knobs.
struct ShedConfig {
  /// Master switch; when false the engine never runs pressure checks and
  /// the hot path pays only one relaxed load per packet.
  bool enabled = false;

  /// Injected-time period between pressure evaluations.
  SimTime check_period = kNanosPerSecond / 4;

  // -- Pressure thresholds (any one over => escalate one level) -------------
  /// Fraction of ring slots occupied on the fullest subscriber channel.
  double ring_occupancy = 0.5;
  /// New ring drops observed since the previous check (messages).
  uint64_t drops_per_check = 1;
  /// Injected time since a source last emitted a punctuation.
  SimTime punct_lag = 2 * kNanosPerSecond;
  /// Fraction of LFTA table slots holding open groups.
  double lfta_occupancy = 0.9;

  // -- Hysteresis -----------------------------------------------------------
  /// A check counts as calm only when every signal sits below its
  /// threshold scaled by this fraction (and no new drops happened).
  double recover_fraction = 0.5;
  /// Consecutive calm checks required before stepping down one level.
  uint32_t hold_checks = 3;

  // -- Ladder actuation -----------------------------------------------------
  uint32_t max_level = 3;
  /// L1: keep 1 packet in `sample_k` at the source; COUNT/SUM scale by k.
  uint32_t sample_k = 4;
  /// L2: drain LFTA epochs only every this many ordered-key advances.
  uint32_t epoch_coarsen = 4;
  /// L3: LFTA occupancy cap, percent of slots; coldest groups beyond it
  /// are force-evicted as partials.
  uint32_t table_cap_pct = 50;
};

/// One pressure reading, assembled by the engine from its telemetry.
struct PressureSignals {
  double max_ring_occupancy = 0;  // fraction of the fullest ring
  uint64_t total_drops = 0;       // cumulative messages dropped, all rings
  SimTime max_punct_lag = 0;      // worst source punctuation staleness
  double max_lfta_occupancy = 0;  // fraction of the fullest LFTA table
};

/// The closed loop: reads PressureSignals, walks the shedding ladder with
/// hysteresis, and actuates through the shared rts::ShedState that the
/// inject path and the LFTA operators read. Single-threaded: Check runs on
/// the inject thread only (the same thread that owns the actuated paths);
/// the exported gauges are readable from any thread.
class OverloadController {
 public:
  OverloadController(const ShedConfig& config, rts::ShedState* state);

  /// Evaluates one pressure reading; escalates, holds, or steps down, and
  /// actuates the new level. Returns the level now in force.
  uint32_t Check(const PressureSignals& signals);

  uint32_t level() const { return state_->Level(); }
  uint64_t checks() const { return checks_.value(); }

  /// Percent of offered packets the current level sheds at the source.
  uint64_t shed_rate_pct() const;

  /// Exports shed_level / shed_rate / shed_checks gauges under `entity`.
  void RegisterTelemetry(telemetry::Registry* metrics,
                         const std::string& entity) const;

  const ShedConfig& config() const { return config_; }

 private:
  /// Whether `signals` breach any threshold at scale 1.0 (escalate) or sit
  /// fully below scale `recover_fraction` (calm).
  bool OverThreshold(const PressureSignals& signals, double scale) const;
  void Actuate(uint32_t level);

  ShedConfig config_;
  rts::ShedState* state_;
  uint64_t last_drops_ = 0;   // drop counter at the previous check
  uint64_t new_drops_ = 0;    // drops seen by the latest check
  uint32_t calm_streak_ = 0;  // consecutive calm checks (hysteresis)
  telemetry::Counter checks_;
};

}  // namespace gigascope::core

#endif  // GIGASCOPE_CORE_SHEDDING_H_
