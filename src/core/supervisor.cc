#include "core/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "telemetry/histogram.h"

namespace gigascope::core {

namespace {

constexpr int64_t kMilli = 1000 * 1000;

/// Reaps `pid` without blocking. Returns true when the child is gone
/// (exited, signalled, or already reaped elsewhere — ECHILD).
bool TryReap(pid_t pid) {
  int status = 0;
  const pid_t r = waitpid(pid, &status, WNOHANG);
  return r == pid || (r < 0 && errno == ECHILD);
}

}  // namespace

Supervisor::Supervisor(const SupervisorOptions& options, size_t workers,
                       ChildMain child_main)
    : options_(options), child_main_(std::move(child_main)) {
  GS_CHECK(workers > 0);
  shm_ = rts::ShmSegment::Create(workers * sizeof(WorkerControl));
  controls_ = shm_->As<WorkerControl>(0);
  for (size_t w = 0; w < workers; ++w) new (&controls_[w]) WorkerControl();
  slots_.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

Supervisor::~Supervisor() { StopAll(); }

Status Supervisor::Start() {
  if (started_) {
    return Status::FailedPrecondition("Supervisor::Start called twice");
  }
  started_ = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t w = 0; w < slots_.size(); ++w) SpawnLocked(w);
  }
  monitor_ = std::thread([this] { MonitorLoop(); });
  return Status::Ok();
}

void Supervisor::SpawnLocked(size_t w) {
  WorkerControl* ctrl = &controls_[w];
  const uint32_t generation =
      ctrl->generation.load(std::memory_order_relaxed) + 1;
  ctrl->generation.store(generation, std::memory_order_relaxed);
  Slot& slot = *slots_[w];
  slot.last_beat = ctrl->heartbeat.load(std::memory_order_relaxed);
  slot.stale_ticks = 0;
  const pid_t pid = fork();
  if (pid == 0) {
    // Child. Run the pump loop and leave via _exit: no atexit handlers, no
    // static destructors — the parent owns every shared resource, and the
    // child's heap copies just vanish with the address space.
    child_main_(w, generation);
    _exit(0);
  }
  GS_CHECK(pid > 0);  // fork failure is unrecoverable here
  slot.pid.store(pid, std::memory_order_relaxed);
  slot.state.store(WorkerState::kRunning, std::memory_order_release);
}

void Supervisor::HandleDeathLocked(size_t w) {
  Slot& slot = *slots_[w];
  slot.pid.store(-1, std::memory_order_relaxed);
  if (sealing_.load(std::memory_order_relaxed) ||
      slot.restarts_used.load(std::memory_order_relaxed) >=
          options_.restart_budget) {
    slot.state.store(WorkerState::kDegraded, std::memory_order_release);
    degraded_count_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.restarts_used.fetch_add(1, std::memory_order_relaxed);
  restarts_.fetch_add(1, std::memory_order_relaxed);
  slot.backoff_ms = slot.backoff_ms == 0
                        ? options_.backoff_initial_ms
                        : std::min(slot.backoff_ms * 2, options_.backoff_max_ms);
  slot.restart_at_ns = telemetry::MonotonicNowNs() +
                       static_cast<int64_t>(slot.backoff_ms) * kMilli;
  slot.state.store(WorkerState::kBackoff, std::memory_order_release);
}

void Supervisor::MonitorLoop() {
  while (!stop_monitor_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const int64_t now = telemetry::MonotonicNowNs();
      for (size_t w = 0; w < slots_.size(); ++w) {
        Slot& slot = *slots_[w];
        const WorkerState state =
            slot.state.load(std::memory_order_relaxed);
        if (state == WorkerState::kRunning) {
          const pid_t pid = slot.pid.load(std::memory_order_relaxed);
          if (TryReap(pid)) {
            HandleDeathLocked(w);
            continue;
          }
          const uint64_t beat =
              controls_[w].heartbeat.load(std::memory_order_relaxed);
          if (beat != slot.last_beat) {
            slot.last_beat = beat;
            slot.stale_ticks = 0;
            continue;
          }
          slot.stale_ticks++;
          heartbeat_misses_.fetch_add(1, std::memory_order_relaxed);
          if (slot.stale_ticks >= options_.miss_threshold) {
            // Alive but silent: hung, stalled, or spinning uselessly. Kill
            // it and take the crash path — restart is the same recovery.
            kill(pid, SIGKILL);
            waitpid(pid, nullptr, 0);
            HandleDeathLocked(w);
          }
        } else if (state == WorkerState::kBackoff) {
          if (sealing_.load(std::memory_order_relaxed)) {
            slot.state.store(WorkerState::kDegraded,
                             std::memory_order_release);
            degraded_count_.fetch_add(1, std::memory_order_relaxed);
          } else if (now >= slot.restart_at_ns) {
            SpawnLocked(w);
          }
        }
      }
    }
    usleep(static_cast<useconds_t>(options_.heartbeat_period_ms * 1000));
  }
}

void Supervisor::BeginSeal() {
  sealing_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    if (slot.state.load(std::memory_order_relaxed) == WorkerState::kBackoff) {
      slot.state.store(WorkerState::kDegraded, std::memory_order_release);
      degraded_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool Supervisor::SendCommand(size_t worker, WorkerCommand command,
                             uint64_t arg, uint64_t* ack_value) {
  GS_CHECK(worker < slots_.size());
  WorkerControl* ctrl = &controls_[worker];
  const uint64_t seq = ctrl->cmd_seq.load(std::memory_order_relaxed) + 1;
  ctrl->cmd_code.store(static_cast<uint32_t>(command),
                       std::memory_order_relaxed);
  ctrl->cmd_arg.store(arg, std::memory_order_relaxed);
  ctrl->cmd_seq.store(seq, std::memory_order_release);
  const int64_t deadline =
      telemetry::MonotonicNowNs() +
      static_cast<int64_t>(options_.command_timeout_ms) * kMilli;
  for (int spins = 0;; ++spins) {
    if (ctrl->ack_seq.load(std::memory_order_acquire) >= seq) {
      if (ack_value != nullptr) {
        *ack_value = ctrl->ack_value.load(std::memory_order_relaxed);
      }
      return true;
    }
    const WorkerState st = state(worker);
    if (st == WorkerState::kDegraded || st == WorkerState::kStopped) {
      return false;
    }
    if (telemetry::MonotonicNowNs() > deadline) return false;
    // A healthy worker acks within one loop iteration; yielding hands it
    // the CPU on single-core boxes, so most round trips resolve in
    // microseconds. Sleep only once the fast path clearly missed (the
    // worker was mid-poll or mid-sleep).
    if (spins < 256) {
      std::this_thread::yield();
    } else {
      usleep(200);
    }
  }
}

void Supervisor::StopAll() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stop_monitor_.store(true, std::memory_order_relaxed);
  if (monitor_.joinable()) monitor_.join();
  // Fire-and-forget exit commands; a healthy worker acks and _exits within
  // one loop iteration.
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t w = 0; w < slots_.size(); ++w) {
    if (slots_[w]->pid.load(std::memory_order_relaxed) <= 0) continue;
    WorkerControl* ctrl = &controls_[w];
    const uint64_t seq = ctrl->cmd_seq.load(std::memory_order_relaxed) + 1;
    ctrl->cmd_code.store(static_cast<uint32_t>(WorkerCommand::kExit),
                         std::memory_order_relaxed);
    ctrl->cmd_arg.store(0, std::memory_order_relaxed);
    ctrl->cmd_seq.store(seq, std::memory_order_release);
  }
  const int64_t deadline = telemetry::MonotonicNowNs() + 2000 * kMilli;
  for (size_t w = 0; w < slots_.size(); ++w) {
    Slot& slot = *slots_[w];
    pid_t pid = slot.pid.load(std::memory_order_relaxed);
    if (pid > 0) {
      bool reaped = false;
      while (telemetry::MonotonicNowNs() < deadline) {
        if (TryReap(pid)) {
          reaped = true;
          break;
        }
        usleep(1000);
      }
      if (!reaped) {
        kill(pid, SIGKILL);
        waitpid(pid, nullptr, 0);
      }
      slot.pid.store(-1, std::memory_order_relaxed);
    }
    if (slot.state.load(std::memory_order_relaxed) != WorkerState::kDegraded) {
      slot.state.store(WorkerState::kStopped, std::memory_order_release);
    }
  }
}

WorkerCommand Supervisor::PendingCommand(WorkerControl* control, uint64_t* arg,
                                         uint64_t* seq) {
  const uint64_t cmd_seq = control->cmd_seq.load(std::memory_order_acquire);
  if (cmd_seq == control->ack_seq.load(std::memory_order_relaxed)) {
    return WorkerCommand::kNone;
  }
  *seq = cmd_seq;
  *arg = control->cmd_arg.load(std::memory_order_relaxed);
  const uint32_t code = control->cmd_code.load(std::memory_order_relaxed);
  if (code == 0 || code > static_cast<uint32_t>(WorkerCommand::kExit)) {
    // Unknown command (version skew can't really happen in-process, but
    // never leave the mailbox wedged): ack it as a no-op.
    Ack(control, cmd_seq, 0);
    return WorkerCommand::kNone;
  }
  return static_cast<WorkerCommand>(code);
}

void Supervisor::Ack(WorkerControl* control, uint64_t seq, uint64_t value) {
  control->ack_value.store(value, std::memory_order_relaxed);
  control->ack_seq.store(seq, std::memory_order_release);
}

}  // namespace gigascope::core
