// EXPLAIN ANALYZE assembly: resolves each retained query plan's operators
// to their instantiated nodes and hands plan/explain.h's renderers a lookup
// over live runtime counters. Counter values come from one registry
// snapshot — the same folded (restart-monotone, proc-tagged) read path that
// feeds gs_stats — so ANALYZE never disagrees with the stats stream.

#include <map>
#include <string>
#include <utility>

#include "core/engine.h"
#include "telemetry/metric_names.h"

namespace gigascope::core {

namespace metric = telemetry::metric;

namespace {

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

}  // namespace

void Engine::AssembleAnalyze(
    std::map<std::string, plan::AnalyzeNodeStats>* by_node,
    plan::AnalyzeSummary* summary) const {
  // Snapshot once, index by (entity, metric). There is exactly one row per
  // (entity, metric) — proc is an owner tag, not a second series.
  const std::vector<telemetry::MetricSample> samples = telemetry_.Snapshot();
  std::map<std::pair<std::string, std::string>, uint64_t> values;
  for (const telemetry::MetricSample& sample : samples) {
    values[{sample.entity, sample.metric}] = sample.value;
  }
  auto value_of = [&values](const std::string& entity,
                            const std::string& name) -> uint64_t {
    auto it = values.find({entity, name});
    return it == values.end() ? 0 : it->second;
  };
  // Node index -> owning worker process (relevant while un-adopted).
  std::map<size_t, size_t> owner;
  for (size_t w = 0; w < process_groups_.size(); ++w) {
    for (size_t idx : process_groups_[w]) owner[idx] = w;
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const rts::QueryNode* node = nodes_[i].get();
    const std::string& name = node->name();
    plan::AnalyzeNodeStats s;
    s.proc = telemetry_.EntityProc(name);
    auto it = owner.find(i);
    if (it != owner.end() && supervisor_ != nullptr &&
        i < node_adopted_.size() && !node_adopted_[i]) {
      s.restarts = supervisor_->restarts_used(it->second);
    }
    s.tuples_in = value_of(name, metric::kTuplesIn);
    s.tuples_out = value_of(name, metric::kTuplesOut);
    s.eval_errors = value_of(name, metric::kEvalErrors);
    s.poll_ns_p50 =
        value_of(name, std::string(metric::kPollNs) + metric::kP50Suffix);
    s.poll_ns_p99 =
        value_of(name, std::string(metric::kPollNs) + metric::kP99Suffix);
    s.tuple_ns_p50 =
        value_of(name, std::string(metric::kTupleNs) + metric::kP50Suffix);
    s.tuple_ns_p99 =
        value_of(name, std::string(metric::kTupleNs) + metric::kP99Suffix);
    // Ring health, summed over the node's input channels ("ring_*" with
    // one input, "ring<i>_*" with several). "_size" must not swallow the
    // ring_batch_size histogram stats ("..._p50" etc. never match, but be
    // explicit about the one real prefix collision).
    for (const telemetry::MetricSample& sample : samples) {
      if (sample.entity != name) continue;
      if (!StartsWith(sample.metric, metric::kRingPrefix)) continue;
      if (EndsWith(sample.metric, metric::kRingPushedSuffix)) {
        s.ring_pushed += sample.value;
      } else if (EndsWith(sample.metric, metric::kRingPoppedSuffix)) {
        s.ring_popped += sample.value;
      } else if (EndsWith(sample.metric, metric::kRingDroppedSuffix)) {
        s.ring_dropped += sample.value;
      } else if (EndsWith(sample.metric, metric::kRingHighWaterSuffix)) {
        s.ring_high_water += sample.value;
      } else if (EndsWith(sample.metric, metric::kRingSizeSuffix) &&
                 !EndsWith(sample.metric, metric::kRingBatchSizeSuffix)) {
        s.ring_size += sample.value;
      }
    }
    size_t native = 0;
    size_t total = 0;
    node->CountJitKernels(&native, &total);
    s.jit_native = native;
    s.jit_total = total;
    summary->trace_truncated += node->trace_truncated();
    by_node->emplace(name, std::move(s));
  }
  summary->pump_mode = pump_mode_;
  summary->shed_level = value_of("engine", metric::kShedLevel);
  summary->worker_restarts =
      supervisor_ != nullptr ? supervisor_->restarts() : 0;
  summary->workers_degraded =
      supervisor_ != nullptr ? supervisor_->degraded_count() : 0;
}

std::string Engine::AnalyzeText(bool mask_volatile) const {
  std::map<std::string, plan::AnalyzeNodeStats> by_node;
  plan::AnalyzeSummary summary;
  AssembleAnalyze(&by_node, &summary);
  plan::AnalyzeOptions opts;
  opts.mask_volatile = mask_volatile;
  plan::AnalyzeLookup lookup =
      [&by_node](const std::string& name) -> const plan::AnalyzeNodeStats* {
    auto it = by_node.find(name);
    return it == by_node.end() ? nullptr : &it->second;
  };
  std::string out;
  for (const AnalyzePlan& p : analyze_plans_) {
    if (!out.empty()) out += "\n";
    out += plan::ExplainAnalyzeText(p.planned, p.split, lookup, summary, opts);
  }
  return out;
}

std::string Engine::AnalyzeJson(bool mask_volatile) const {
  std::map<std::string, plan::AnalyzeNodeStats> by_node;
  plan::AnalyzeSummary summary;
  AssembleAnalyze(&by_node, &summary);
  plan::AnalyzeOptions opts;
  opts.mask_volatile = mask_volatile;
  plan::AnalyzeLookup lookup =
      [&by_node](const std::string& name) -> const plan::AnalyzeNodeStats* {
    auto it = by_node.find(name);
    return it == by_node.end() ? nullptr : &it->second;
  };
  std::string out = "{\"queries\":[";
  for (size_t i = 0; i < analyze_plans_.size(); ++i) {
    if (i > 0) out += ",";
    out += plan::ExplainAnalyzeJson(analyze_plans_[i].planned,
                                    analyze_plans_[i].split, lookup, summary,
                                    opts);
  }
  out += "]}";
  return out;
}

}  // namespace gigascope::core
