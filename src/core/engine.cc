#include "core/engine.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/logging.h"
#include "core/compiled_query.h"
#include "gsql/parser.h"
#include "net/headers.h"
#include "ops/lfta_agg.h"
#include "rts/punctuation.h"
#include "telemetry/metric_names.h"

namespace gigascope::core {

using expr::Value;
using gsql::DataType;
namespace metric = telemetry::metric;

TupleSubscription::TupleSubscription(rts::Subscription channel,
                                     gsql::StreamSchema schema)
    : channel_(std::move(channel)), codec_(std::move(schema)) {}

std::optional<rts::Row> TupleSubscription::NextRow() {
  rts::StreamMessage message;
  while (channel_->TryPop(&message)) {
    if (message.kind != rts::StreamMessage::Kind::kTuple) continue;
    auto row = codec_.Decode(
        ByteSpan(message.payload.data(), message.payload.size()));
    if (row.ok()) return std::move(row).value();
  }
  return std::nullopt;
}

Engine::Engine(EngineOptions options) : options_(options) {
  if (options_.functions == nullptr) {
    options_.functions = udf::FunctionRegistry::Default();
  }
  // Built-in protocols.
  GS_CHECK(catalog_.AddSchema(gsql::Catalog::BuiltinPacketSchema()).ok());
  GS_CHECK(catalog_.AddSchema(gsql::Catalog::BuiltinNetflowSchema()).ok());
  // The self-telemetry stream: registered in both the catalog and the
  // stream registry up front, so any query can `FROM gs_stats` through the
  // normal planner path, exactly like a user-declared stream.
  GS_CHECK(catalog_.AddSchema(gsql::Catalog::BuiltinStatsSchema()).ok());
  GS_CHECK(registry_.DeclareStream(gsql::Catalog::BuiltinStatsSchema()).ok());
  stats_source_ =
      std::make_unique<telemetry::StatsSource>(&telemetry_, &registry_);
  telemetry_.Register("engine", metric::kHeartbeats, &heartbeats_);
  telemetry_.Register("engine", metric::kStatsSnapshots,
                      stats_source_->snapshots_counter());
  if (options_.trace_sample > 0) {
    tracer_ = std::make_unique<telemetry::Tracer>(options_.trace_sample,
                                                  options_.trace_seed);
    tracer_->SetTrackName(0, "inject");
    telemetry_.Register("engine", metric::kTraceSampled,
                        tracer_->sampled_counter());
    telemetry_.Register("engine", metric::kTraceDroppedEvents,
                        tracer_->dropped_events_counter());
  }
  if (options_.shed.enabled) {
    shed_controller_ =
        std::make_unique<OverloadController>(options_.shed, &shed_state_);
    shed_controller_->RegisterTelemetry(&telemetry_, "engine");
    telemetry_.Register("engine", metric::kShedTuples, &shed_tuples_);
  }
  {
    // Native tier: environment overrides beat the options struct so test
    // suites and CI can force a mode without plumbing flags everywhere.
    jit::JitOptions jit_options = options_.jit;
    if (const char* force = std::getenv("GS_JIT_FORCE")) {
      std::optional<jit::JitMode> mode = jit::ParseJitMode(force);
      if (mode.has_value()) {
        jit_options.mode = *mode;
      } else {
        GS_LOG(Warning) << "ignoring GS_JIT_FORCE=" << force
                        << " (want off|sync|async)";
      }
    }
    if (const char* dir = std::getenv("GS_JIT_CACHE_DIR")) {
      if (*dir != '\0') jit_options.cache_dir = dir;
    }
    jit_ = std::make_unique<jit::JitEngine>(std::move(jit_options));
    jit_->RegisterTelemetry(&telemetry_);
  }
  // Like GS_JIT_FORCE: lets a CI leg run an existing test binary in
  // process mode (shm-backed rings + StartProcesses eligibility) without
  // plumbing a flag through every harness.
  if (const char* force = std::getenv("GS_PROCESS_FORCE")) {
    const std::string_view v(force);
    if (!v.empty() && v != "0" && v != "off") options_.process.enabled = true;
  }
  if (options_.process.enabled) {
    // Every subscription created from here on gets a shm-backed ring, so
    // the rings forked worker processes inherit are shared, not copied.
    rts::ShmRingOptions shm;
    shm.enabled = true;
    shm.max_slots = options_.process.shm_max_slots;
    shm.slot_bytes = options_.process.shm_slot_bytes;
    registry_.SetChannelOptions(shm);
    // Ring-health counters live in the shm control blocks, so the parent's
    // aggregate readers see child-side progress.
    telemetry_.RegisterReader("engine", metric::kTornSlots,
                              [this] { return registry_.TotalTornAll(); });
    telemetry_.RegisterReader("engine", metric::kResyncDropped, [this] {
      return registry_.TotalResyncDroppedAll();
    });
    telemetry_.RegisterReader("engine", metric::kOversizeDropped, [this] {
      return registry_.TotalOversizeDroppedAll();
    });
  }
}

Engine::~Engine() {
  StopProcesses();
  StopThreads();
}

Status Engine::CheckMutable(const char* operation) const {
  if (threads_running_) {
    return Status::FailedPrecondition(
        std::string(operation) +
        ": the worker pool is running; call StopThreads first");
  }
  if (processes_running_) {
    return Status::FailedPrecondition(
        std::string(operation) +
        ": worker processes are running; they fork-share the structures "
        "this call mutates");
  }
  return Status::Ok();
}

Status Engine::CheckAcceptingInput(const char* operation) const {
  if (flushed_) {
    return Status::FailedPrecondition(
        std::string(operation) +
        ": the engine is flushed (FlushAll is end-of-stream); no further "
        "input is accepted");
  }
  return Status::Ok();
}

void Engine::AddInterface(const std::string& name) {
  catalog_.AddInterface(name);
}

Status Engine::ExecuteDdl(std::string_view ddl) {
  GS_RETURN_IF_ERROR(CheckMutable("ExecuteDdl"));
  GS_ASSIGN_OR_RETURN(gsql::ParsedProgram program, gsql::Parse(ddl));
  for (const gsql::Statement& statement : program.statements) {
    const auto* create = std::get_if<gsql::CreateStmt>(&statement);
    if (create == nullptr) {
      return Status::InvalidArgument(
          "ExecuteDdl accepts only CREATE statements; use AddQuery for "
          "queries");
    }
    GS_RETURN_IF_ERROR(catalog_.AddSchema(create->schema));
  }
  return Status::Ok();
}

Status Engine::DeclareStream(const gsql::StreamSchema& schema) {
  GS_RETURN_IF_ERROR(CheckMutable("DeclareStream"));
  if (schema.kind() != gsql::StreamKind::kStream) {
    return Status::InvalidArgument(
        "DeclareStream declares Stream schemas; protocols come from DDL");
  }
  if (!catalog_.HasSchema(schema.name())) {
    GS_RETURN_IF_ERROR(catalog_.AddSchema(schema));
  }
  return registry_.DeclareStream(schema);
}

Status Engine::EnsureProtocolSource(const std::string& interface_name,
                                    const std::string& protocol) {
  std::string stream_name = ProtocolStreamName(interface_name, protocol);
  if (protocol_sources_.count(stream_name) > 0) return Status::Ok();
  GS_ASSIGN_OR_RETURN(gsql::StreamSchema schema,
                      catalog_.GetSchema(protocol));
  // Built in place: the telemetry counters are neither movable nor
  // copyable, and map nodes are stable, so the registry can point at them.
  ProtocolSource& source = protocol_sources_[stream_name];
  source.stream_name = stream_name;
  source.schema = gsql::StreamSchema(stream_name, gsql::StreamKind::kStream,
                                     schema.fields());
  source.interpret = BuildInterpretPlan(source.schema);
  // Payload fields heap-copy packet bytes per interpretation; leave them
  // off until a consumer that reads them shows up (MarkProtocolFieldUses,
  // Subscribe, AddNode). With user nodes around, any stream may be read
  // through registry(), so keep everything on.
  if (!user_nodes_present_) {
    for (size_t f = 0; f < source.interpret.fields.size(); ++f) {
      if (source.interpret.fields[f] == InterpretPlan::Extract::kPayload ||
          source.interpret.fields[f] == InterpretPlan::Extract::kIpPayload) {
        source.interpret.wanted[f] = false;
      }
    }
  }
  source.codec = std::make_unique<rts::TupleCodec>(source.schema);
  Status declared = registry_.DeclareStream(source.schema);
  if (!declared.ok()) {
    protocol_sources_.erase(stream_name);
    return declared;
  }
  telemetry_.Register(stream_name, metric::kPackets, &source.packets);
  telemetry_.Register(stream_name, metric::kLastPunctSec,
                      &source.last_punct_sec);
  telemetry_.RegisterHistogram(stream_name, metric::kPunctLagNs,
                               &source.punct_lag);
  telemetry_.Register(stream_name, metric::kParseErrors,
                      &source.parse_errors);
  telemetry_.Register(stream_name, metric::kTimeRegressions,
                      &source.time_regressions);
  return Status::Ok();
}

Status Engine::EnsureSources(const plan::PlanPtr& plan) {
  if (plan == nullptr) return Status::Ok();
  if (plan->kind == plan::PlanKind::kSource && plan->source_is_protocol) {
    GS_RETURN_IF_ERROR(
        EnsureProtocolSource(plan->interface_name, plan->source_stream));
  }
  for (const plan::PlanPtr& child : plan->children) {
    GS_RETURN_IF_ERROR(EnsureSources(child));
  }
  return Status::Ok();
}

void Engine::MarkAllProtocolFields(ProtocolSource& source) {
  source.interpret.wanted.assign(source.interpret.wanted.size(), true);
}

void Engine::MarkProtocolFieldUses(const plan::PlanPtr& node) {
  if (node == nullptr || node->kind == plan::PlanKind::kSource) return;
  for (const plan::PlanPtr& child : node->children) {
    MarkProtocolFieldUses(child);
  }
  // (input, field) references of this operator's expressions; inputs that
  // resolve to protocol-source children mark the field wanted.
  std::vector<std::pair<size_t, size_t>> refs;
  auto collect = [&refs](const expr::IrPtr& ir) {
    if (ir != nullptr) expr::CollectFieldRefs(ir, &refs);
  };
  switch (node->kind) {
    case plan::PlanKind::kSelectProject:
      collect(node->predicate);
      for (const expr::IrPtr& projection : node->projections) {
        collect(projection);
      }
      break;
    case plan::PlanKind::kAggregate:
      for (const expr::IrPtr& key : node->group_keys) collect(key);
      for (const expr::AggregateSpec& agg : node->aggregates) {
        collect(agg.arg);
      }
      break;
    case plan::PlanKind::kJoin:
      collect(node->join_predicate);
      refs.emplace_back(0, node->left_window_field);
      refs.emplace_back(1, node->right_window_field);
      break;
    case plan::PlanKind::kMerge:
      for (size_t i = 0; i < node->children.size(); ++i) {
        refs.emplace_back(i, node->merge_field);
      }
      break;
    case plan::PlanKind::kSource:
      return;
  }
  for (const auto& [input, field] : refs) {
    if (input >= node->children.size()) continue;
    const plan::PlanPtr& child = node->children[input];
    if (child->kind != plan::PlanKind::kSource || !child->source_is_protocol) {
      continue;
    }
    auto it = protocol_sources_.find(
        ProtocolStreamName(child->interface_name, child->source_stream));
    if (it == protocol_sources_.end()) continue;
    if (field < it->second.interpret.wanted.size()) {
      it->second.interpret.wanted[field] = true;
    }
  }
}

Result<QueryInfo> Engine::AddQuery(
    std::string_view gsql_text,
    const std::map<std::string, expr::Value>& params) {
  GS_RETURN_IF_ERROR(CheckMutable("AddQuery"));
  // True-up stage and telemetry bookkeeping if an earlier instantiation
  // failed partway.
  node_stages_.resize(nodes_.size(), NodeStage::kHfta);
  RegisterNewNodeTelemetry();
  const size_t first_new_node = nodes_.size();
  GS_ASSIGN_OR_RETURN(gsql::Statement statement,
                      gsql::ParseStatement(gsql_text));

  // Extract the DEFINE block (shared by SELECT and MERGE).
  const gsql::DefineBlock* define = nullptr;
  if (const auto* select = std::get_if<gsql::SelectStmt>(&statement)) {
    define = &select->define;
  } else if (const auto* merge = std::get_if<gsql::MergeStmt>(&statement)) {
    define = &merge->define;
  } else {
    return Status::InvalidArgument(
        "AddQuery accepts SELECT or MERGE statements; use ExecuteDdl for "
        "CREATE");
  }

  // Resolve declared parameters to slots and instantiation-time values.
  plan::PlannerOptions planner_options;
  planner_options.resolver = options_.functions;
  std::vector<Value> param_values;
  std::vector<std::string> param_names;
  for (const auto& decl : define->params) {
    planner_options.params.emplace_back(decl.name, decl.type);
    param_names.push_back(decl.name);
    auto it = params.find(decl.name);
    Value value;
    if (it != params.end()) {
      GS_ASSIGN_OR_RETURN(value, expr::CastValue(it->second, decl.type));
    } else if (decl.default_value != nullptr) {
      const auto* literal =
          std::get_if<gsql::LiteralExpr>(&decl.default_value->node);
      if (literal == nullptr) {
        return Status::InvalidArgument("parameter '" + decl.name +
                                       "' default must be a literal");
      }
      switch (literal->type) {
        case DataType::kInt:
          value = Value::Int(literal->int_value);
          break;
        case DataType::kUint:
        case DataType::kIp:
          value = Value::Uint(literal->uint_value);
          break;
        case DataType::kFloat:
          value = Value::Float(literal->float_value);
          break;
        case DataType::kString:
          value = Value::String(literal->string_value);
          break;
        case DataType::kBool:
          value = Value::Bool(literal->bool_value);
          break;
      }
      GS_ASSIGN_OR_RETURN(value, expr::CastValue(value, decl.type));
    } else {
      return Status::InvalidArgument("parameter '" + decl.name +
                                     "' has no value and no default");
    }
    param_values.push_back(std::move(value));
  }

  // Plan.
  plan::PlannedQuery planned;
  if (const auto* select = std::get_if<gsql::SelectStmt>(&statement)) {
    GS_ASSIGN_OR_RETURN(gsql::ResolvedSelect resolved,
                        gsql::AnalyzeSelect(*select, catalog_));
    GS_ASSIGN_OR_RETURN(planned, plan::PlanSelect(resolved, planner_options));
  } else {
    const auto& merge = std::get<gsql::MergeStmt>(statement);
    GS_ASSIGN_OR_RETURN(gsql::ResolvedMerge resolved,
                        gsql::AnalyzeMerge(merge, catalog_));
    GS_ASSIGN_OR_RETURN(planned, plan::PlanMerge(resolved, planner_options));
  }
  if (registry_.HasStream(planned.name)) {
    return Status::AlreadyExists("a query named '" + planned.name +
                                 "' is already running");
  }

  // Split into LFTA/HFTA.
  GS_ASSIGN_OR_RETURN(plan::SplitQuery split, plan::SplitPlan(planned));

  QueryInfo info;
  info.name = split.name;
  info.lfta_name = split.lfta_name;
  info.has_lfta = split.lfta != nullptr;
  info.has_hfta = split.hfta != nullptr;
  info.split_aggregation = split.split_aggregation;
  info.unbounded_aggregation = planned.unbounded_aggregation;
  info.has_nic_program = split.has_nic_program;
  info.nic_program = split.nic_program;
  info.snap_len = split.snap_len;
  info.plan_text = "-- logical --\n" + planned.root->ToString();
  if (split.lfta != nullptr) {
    info.plan_text += "-- lfta --\n" + split.lfta->ToString();
  }
  if (split.hfta != nullptr) {
    info.plan_text += "-- hfta --\n" + split.hfta->ToString();
  }

  // Instantiate: LFTA first (it declares the mangled stream the HFTA
  // reads), then the HFTA.
  QueryParams query_params;
  query_params.block =
      std::make_shared<std::vector<Value>>(param_values);
  query_params.names = param_names;

  InstantiationContext ctx;
  ctx.registry = &registry_;
  ctx.params = query_params.block;
  ctx.param_values = param_values;
  ctx.channel_capacity = options_.channel_capacity;
  ctx.lfta_hash_log2 = options_.lfta_hash_log2;
  ctx.output_batch = options_.batch_max_size;
  // With shedding off, nodes keep a null pointer and pay nothing.
  ctx.shed = options_.shed.enabled ? &shed_state_ : nullptr;
  ctx.nodes = &nodes_;

  if (split.lfta != nullptr) {
    GS_RETURN_IF_ERROR(EnsureSources(split.lfta));
    MarkProtocolFieldUses(split.lfta);
    ctx.use_lfta_table = split.split_aggregation;
    // LFTA-stage nodes run on the inject thread even in multi-process
    // mode, and the splitter guarantees their inputs are protocol sources
    // or streams internal to this same plan — all produced in the parent.
    // Keep those rings heap-backed: the per-packet source traffic must
    // not pay shm serialization for a process boundary it never crosses.
    ctx.parent_local = true;
    std::string lfta_output =
        split.hfta == nullptr ? split.name : split.lfta_name;
    GS_RETURN_IF_ERROR(InstantiatePlan(split.lfta, lfta_output, &ctx));
    ctx.parent_local = false;
  }
  // Nodes instantiated so far belong to the LFTA plan and stay on the
  // inject thread in threaded mode; everything after runs on workers.
  node_stages_.resize(nodes_.size(), NodeStage::kLfta);
  if (split.hfta != nullptr) {
    GS_RETURN_IF_ERROR(EnsureSources(split.hfta));
    MarkProtocolFieldUses(split.hfta);
    ctx.use_lfta_table = false;
    GS_RETURN_IF_ERROR(InstantiatePlan(split.hfta, split.name, &ctx));
  }
  node_stages_.resize(nodes_.size(), NodeStage::kHfta);

  // Register the query's output schema in the catalog so later queries can
  // compose over it (§2.2).
  catalog_.PutStreamSchema(planned.output_schema);
  query_params_.emplace(info.name, std::move(query_params));
  query_infos_.push_back(info);
  // Retained for EXPLAIN ANALYZE (plan trees are shared_ptr-backed, so
  // this is a cheap handle copy, not a deep clone).
  analyze_plans_.push_back({planned, split});
  // The node publishing under the query's public name is its terminal:
  // tuples it emits while processing a traced message record the
  // inject→emit latency. Marked before telemetry registration so the
  // e2e_latency_ns histogram is registered for it.
  for (size_t i = first_new_node; i < nodes_.size(); ++i) {
    if (nodes_[i]->name() == split.name) nodes_[i]->set_terminal(true);
  }
  // Native tier: collect this query's kernel requests in one batch and
  // hand it to the jit engine — compiled inline (sync) or on the worker
  // with a later hot swap (async). A no-op when the tier is off.
  if (jit_->enabled()) {
    std::unique_ptr<jit::QueryJit> batch = jit_->BeginQuery();
    for (size_t i = first_new_node; i < nodes_.size(); ++i) {
      nodes_[i]->AttachJit(batch.get());
    }
    jit_->Submit(std::move(batch));
  }
  RegisterNewNodeTelemetry();
  return info;
}

void Engine::RegisterNewNodeTelemetry() {
  for (; telemetry_registered_nodes_ < nodes_.size();
       ++telemetry_registered_nodes_) {
    rts::QueryNode* node = nodes_[telemetry_registered_nodes_].get();
    if (tracer_ != nullptr) {
      const uint32_t track = next_track_id_++;
      node->SetTracer(tracer_.get(), track);
      tracer_->SetTrackName(track, node->name());
    }
    node->RegisterTelemetry(&telemetry_);
    // Cache LFTA-table nodes so the overload controller's pressure checks
    // can read table occupancy without a scan-and-cast per check.
    if (const auto* lfta = dynamic_cast<const ops::LftaAggregateNode*>(node)) {
      lfta_agg_nodes_.push_back(lfta);
    }
  }
}

Status Engine::SetParam(const std::string& query_name,
                        const std::string& param_name, expr::Value value) {
  // The param block is read by worker-owned nodes without locks.
  GS_RETURN_IF_ERROR(CheckMutable("SetParam"));
  auto it = query_params_.find(query_name);
  if (it == query_params_.end()) {
    return Status::NotFound("no query named '" + query_name + "'");
  }
  for (size_t i = 0; i < it->second.names.size(); ++i) {
    if (it->second.names[i] == param_name) {
      DataType declared = (*it->second.block)[i].type();
      GS_ASSIGN_OR_RETURN(Value casted, expr::CastValue(value, declared));
      (*it->second.block)[i] = std::move(casted);
      return Status::Ok();
    }
  }
  return Status::NotFound("query '" + query_name + "' has no parameter '" +
                          param_name + "'");
}

Result<std::unique_ptr<TupleSubscription>> Engine::Subscribe(
    const std::string& stream_name, size_t capacity) {
  GS_RETURN_IF_ERROR(CheckMutable("Subscribe"));
  GS_ASSIGN_OR_RETURN(gsql::StreamSchema schema,
                      registry_.GetSchema(stream_name));
  // A raw subscriber to a protocol stream sees whole rows; materialize
  // every field from here on.
  auto source_it = protocol_sources_.find(stream_name);
  if (source_it != protocol_sources_.end()) {
    MarkAllProtocolFields(source_it->second);
  }
  GS_ASSIGN_OR_RETURN(rts::Subscription channel,
                      registry_.Subscribe(stream_name, capacity));
  // Subscriber-side channels are observable too; the readers share
  // ownership so the ring outlives any snapshot.
  std::string entity =
      stream_name + "#sub" + std::to_string(subscriber_seq_++);
  rts::Subscription shared = channel;
  const std::string ring = metric::kRingPrefix;
  telemetry_.RegisterReader(entity, ring + metric::kRingPushedSuffix,
                            [shared] { return shared->pushed(); });
  telemetry_.RegisterReader(entity, ring + metric::kRingDroppedSuffix,
                            [shared] { return shared->dropped(); });
  telemetry_.RegisterReader(entity, ring + metric::kRingSizeSuffix,
                            [shared] {
                              return static_cast<uint64_t>(shared->size());
                            });
  telemetry_.RegisterReader(entity, ring + metric::kRingHighWaterSuffix,
                            [shared] {
                              return static_cast<uint64_t>(
                                  shared->high_water_mark());
                            });
  telemetry_.RegisterHistogram(
      entity, ring + metric::kRingOccupancySuffix,
      [shared] { return shared->occupancy_histogram().Snapshot(); });
  telemetry_.RegisterHistogram(
      entity, ring + metric::kRingBatchSizeSuffix,
      [shared] { return shared->batch_size_histogram().Snapshot(); });
  return std::make_unique<TupleSubscription>(std::move(channel),
                                             std::move(schema));
}

InterpretPlan BuildInterpretPlan(const gsql::StreamSchema& schema) {
  using Extract = InterpretPlan::Extract;
  InterpretPlan plan;
  plan.fields.reserve(schema.num_fields());
  for (size_t f = 0; f < schema.num_fields(); ++f) {
    const gsql::FieldDef& field = schema.field(f);
    const std::string& name = field.name;
    Extract extract = Extract::kDefault;
    if (name == "time") extract = Extract::kTime;
    else if (name == "timestamp") extract = Extract::kTimestamp;
    else if (name == "len") extract = Extract::kLen;
    else if (name == "srcIP") extract = Extract::kSrcIp;
    else if (name == "destIP") extract = Extract::kDestIp;
    else if (name == "srcPort") extract = Extract::kSrcPort;
    else if (name == "destPort") extract = Extract::kDestPort;
    else if (name == "protocol") extract = Extract::kProtocol;
    else if (name == "ipVersion") extract = Extract::kIpVersion;
    else if (name == "tcpFlags") extract = Extract::kTcpFlags;
    else if (name == "tcpSeq") extract = Extract::kTcpSeq;
    else if (name == "ipId") extract = Extract::kIpId;
    else if (name == "fragOffset") extract = Extract::kFragOffset;
    else if (name == "moreFrags") extract = Extract::kMoreFrags;
    else if (name == "payload") extract = Extract::kPayload;
    else if (name == "ipPayload") extract = Extract::kIpPayload;
    plan.fields.push_back(extract);
    plan.types.push_back(field.type);
    plan.wanted.push_back(true);
  }
  return plan;
}

rts::Row InterpretPacket(const InterpretPlan& plan,
                         const net::Packet& packet) {
  return InterpretPacket(plan, packet, nullptr);
}

rts::Row InterpretPacket(const InterpretPlan& plan, const net::Packet& packet,
                         bool* malformed) {
  using Extract = InterpretPlan::Extract;
  auto decoded_result = net::DecodePacket(packet.view());
  const net::DecodedPacket* decoded =
      decoded_result.ok() ? &decoded_result.value() : nullptr;
  if (malformed != nullptr) *malformed = decoded == nullptr;
  const bool has_ip = decoded != nullptr && decoded->ip.has_value();

  rts::Row row;
  row.reserve(plan.fields.size());
  for (size_t f = 0; f < plan.fields.size(); ++f) {
    Extract extract = plan.fields[f];
    // Gated-off fields and extractors whose protocol layer is absent both
    // interpret as the type default, matching name-based interpretation of
    // an undecodable packet.
    if (!plan.wanted[f]) extract = Extract::kDefault;
    switch (extract) {
      case Extract::kTime:
        row.push_back(Value::Uint(
            static_cast<uint64_t>(SimTimeToSeconds(packet.timestamp))));
        continue;
      case Extract::kTimestamp:
        row.push_back(Value::Uint(static_cast<uint64_t>(packet.timestamp)));
        continue;
      case Extract::kLen:
        row.push_back(Value::Uint(packet.orig_len));
        continue;
      case Extract::kSrcIp:
        if (!has_ip) break;
        row.push_back(Value::Ip(decoded->ip->src_addr));
        continue;
      case Extract::kDestIp:
        if (!has_ip) break;
        row.push_back(Value::Ip(decoded->ip->dst_addr));
        continue;
      case Extract::kSrcPort: {
        if (decoded == nullptr) break;
        uint16_t port = decoded->is_tcp()   ? decoded->tcp->src_port
                        : decoded->is_udp() ? decoded->udp->src_port
                                            : 0;
        row.push_back(Value::Uint(port));
        continue;
      }
      case Extract::kDestPort: {
        if (decoded == nullptr) break;
        uint16_t port = decoded->is_tcp()   ? decoded->tcp->dst_port
                        : decoded->is_udp() ? decoded->udp->dst_port
                                            : 0;
        row.push_back(Value::Uint(port));
        continue;
      }
      case Extract::kProtocol:
        if (!has_ip) break;
        row.push_back(Value::Uint(decoded->ip->protocol));
        continue;
      case Extract::kIpVersion:
        if (decoded == nullptr) break;
        row.push_back(Value::Uint(has_ip ? 4 : 0));
        continue;
      case Extract::kTcpFlags:
        if (decoded == nullptr) break;
        row.push_back(
            Value::Uint(decoded->is_tcp() ? decoded->tcp->flags : 0));
        continue;
      case Extract::kTcpSeq:
        if (decoded == nullptr) break;
        row.push_back(Value::Uint(decoded->is_tcp() ? decoded->tcp->seq : 0));
        continue;
      case Extract::kIpId:
        if (!has_ip) break;
        row.push_back(Value::Uint(decoded->ip->identification));
        continue;
      case Extract::kFragOffset:
        if (!has_ip) break;
        row.push_back(Value::Uint(decoded->ip->fragment_offset));
        continue;
      case Extract::kMoreFrags:
        if (!has_ip) break;
        row.push_back(Value::Uint(decoded->ip->more_fragments() ? 1 : 0));
        continue;
      case Extract::kIpPayload: {
        if (!has_ip) break;
        // The IP payload including any transport header — what an IP
        // defragmenter reassembles.
        size_t start = net::kEthernetHeaderLen + decoded->ip->header_len;
        std::string ip_payload;
        if (packet.bytes.size() > start) {
          ip_payload.assign(
              reinterpret_cast<const char*>(packet.bytes.data() + start),
              packet.bytes.size() - start);
        }
        row.push_back(Value::String(std::move(ip_payload)));
        continue;
      }
      case Extract::kPayload: {
        std::string payload;
        if (decoded != nullptr) {
          payload.assign(
              reinterpret_cast<const char*>(decoded->payload.data()),
              decoded->payload.size());
        }
        row.push_back(Value::String(std::move(payload)));
        continue;
      }
      case Extract::kDefault:
        break;
    }
    row.push_back(Value::Default(plan.types[f]));
  }
  return row;
}

rts::Row InterpretPacket(const gsql::StreamSchema& schema,
                         const net::Packet& packet) {
  return InterpretPacket(BuildInterpretPlan(schema), packet);
}

Status Engine::InjectPacket(const std::string& interface_name,
                            const net::Packet& packet) {
  GS_RETURN_IF_ERROR(CheckAcceptingInput("InjectPacket"));
  // One sampling decision per packet: every protocol stream's copy of a
  // traced packet carries the same trace id.
  uint64_t trace_id = 0;
  int64_t trace_ns = 0;
  if (tracer_ != nullptr) {
    trace_id = tracer_->SampleInject();
    if (trace_id != 0) {
      trace_ns = tracer_->NowNs();
      tracer_->RecordInstant("inject", /*tid=*/0, trace_id, trace_ns);
    }
  }
  // L1 shedding: deterministic 1-in-k sampling at the source. One decision
  // per offered packet (not per source) keeps protocol streams of the same
  // interface consistent. Shed packets are accounted — the counter below
  // and the Horvitz-Thompson weight the LFTA folds survivors with — never
  // silently lost.
  ++inject_seq_;
  const uint32_t sample_k = shed_state_.SampleK();
  const bool shed_this = sample_k > 1 && (inject_seq_ % sample_k) != 0;
  bool any = false;
  bool published = false;
  for (auto& [stream_name, source] : protocol_sources_) {
    if (stream_name.rfind(interface_name + ".", 0) != 0) continue;
    any = true;
    // A packet timestamped behind the source's last punctuation would
    // violate the ordering promise already published downstream; clamp it
    // to the bound (windows at the bound are still open — closes are
    // strictly-below) and count the regression.
    const net::Packet* effective = &packet;
    net::Packet clamped;
    if (packet.timestamp < source.last_punct_time) {
      clamped = packet;
      clamped.timestamp = source.last_punct_time;
      effective = &clamped;
      ++source.time_regressions;
    }
    if (shed_this) {
      // The shed packet still advances the source's packet count and, on
      // punctuation boundaries, emits a time-only punctuation (like a
      // heartbeat) so windows keep closing under heavy shed.
      ++source.packets;
      ++shed_tuples_;
      if (options_.punctuation_interval > 0 &&
          source.packets.value() % options_.punctuation_interval == 0) {
        rts::Punctuation punctuation;
        for (size_t f = 0; f < source.schema.num_fields(); ++f) {
          const gsql::FieldDef& field = source.schema.field(f);
          if (!field.order.IsIncreasingLike()) continue;
          if (field.name == "time") {
            const auto sec = static_cast<uint64_t>(
                SimTimeToSeconds(effective->timestamp));
            punctuation.bounds.emplace_back(f, Value::Uint(sec));
            source.last_punct_sec.Set(sec);
          } else if (field.name == "timestamp") {
            punctuation.bounds.emplace_back(
                f, Value::Uint(static_cast<uint64_t>(effective->timestamp)));
          }
        }
        if (!punctuation.bounds.empty()) {
          source.open_batch.items.push_back(
              rts::MakePunctuationMessage(punctuation, source.schema));
          registry_.PublishBatch(stream_name, std::move(source.open_batch));
          source.open_batch.items.clear();
          source.last_punct_time = effective->timestamp;
          published = true;
        }
      }
      continue;
    }
    bool malformed = false;
    rts::Row row = InterpretPacket(source.interpret, *effective, &malformed);
    if (malformed) ++source.parse_errors;
    rts::StreamMessage message;
    message.kind = rts::StreamMessage::Kind::kTuple;
    message.trace_id = trace_id;
    message.trace_ns = trace_ns;
    // Horvitz-Thompson weight, stamped at the sampling decision: this
    // survivor stands for itself plus the sample_k - 1 packets the L1
    // sampler sheds around it.
    message.weight = sample_k;
    source.codec->Encode(row, &message.payload);
    // Batched inject path: the tuple joins the source's open batch, which
    // publishes as one ring message when it fills, ages out, or a
    // punctuation closes it (a punctuation is always a batch's last item).
    if (source.open_batch.items.empty()) {
      source.batch_open_time = effective->timestamp;
    }
    source.open_batch.items.push_back(std::move(message));
    source.last_row = std::move(row);
    ++source.packets;
    if (source.last_punct_time > 0 &&
        effective->timestamp >= source.last_punct_time) {
      source.punct_lag.Record(static_cast<uint64_t>(effective->timestamp -
                                                    source.last_punct_time));
    }
    bool flush = source.open_batch.items.size() >= options_.batch_max_size;
    if (options_.punctuation_interval > 0 &&
        source.packets.value() % options_.punctuation_interval == 0) {
      rts::Punctuation punctuation;
      for (size_t f = 0; f < source.schema.num_fields(); ++f) {
        const gsql::OrderSpec& order = source.schema.field(f).order;
        if (!order.IsIncreasingLike()) continue;
        if (source.schema.field(f).type == DataType::kString) continue;
        punctuation.bounds.emplace_back(f, source.last_row[f]);
        if (source.schema.field(f).name == "time") {
          source.last_punct_sec.Set(source.last_row[f].uint_value());
        }
      }
      if (!punctuation.bounds.empty()) {
        rts::StreamMessage punct_message =
            rts::MakePunctuationMessage(punctuation, source.schema);
        // Punctuation triggered by a traced packet carries its context:
        // aggregate groups flushed by this punctuation downstream inherit
        // the trace, so e2e latency covers inject -> group close even when
        // the close is punctuation-driven.
        punct_message.trace_id = trace_id;
        punct_message.trace_ns = trace_ns;
        source.open_batch.items.push_back(std::move(punct_message));
        source.last_punct_time = effective->timestamp;
        flush = true;
      }
    }
    if (!flush && options_.batch_max_delay > 0 &&
        effective->timestamp - source.batch_open_time >=
            options_.batch_max_delay) {
      flush = true;
    }
    if (flush) {
      registry_.PublishBatch(stream_name, std::move(source.open_batch));
      source.open_batch.items.clear();
      published = true;
    }
  }
  if (!any) {
    return Status::NotFound("no protocol sources on interface '" +
                            interface_name + "' (add a query first)");
  }
  if (packet.timestamp > last_input_time_) {
    last_input_time_ = packet.timestamp;
  }
  MaybeEmitStats(packet.timestamp);
  MaybeRunShedCheck(packet.timestamp);
  // Threaded mode: LFTAs run next to the capture loop (§4), so drive them
  // here when this packet published anything; their outputs wake the HFTA
  // workers.
  if (published) {
    if (threads_running_) {
      PumpStage(NodeStage::kLfta, options_.worker_poll_budget);
    } else if (processes_running_) {
      PumpProcessRound(options_.worker_poll_budget);
    }
  }
  return Status::Ok();
}

Status Engine::InjectHeartbeat(const std::string& interface_name,
                               SimTime now) {
  GS_RETURN_IF_ERROR(CheckAcceptingInput("InjectHeartbeat"));
  bool any = false;
  for (auto& [stream_name, source] : protocol_sources_) {
    if (stream_name.rfind(interface_name + ".", 0) != 0) continue;
    any = true;
    rts::Punctuation punctuation;
    for (size_t f = 0; f < source.schema.num_fields(); ++f) {
      const gsql::FieldDef& field = source.schema.field(f);
      if (!field.order.IsIncreasingLike()) continue;
      if (field.name == "time") {
        punctuation.bounds.emplace_back(
            f, Value::Uint(static_cast<uint64_t>(SimTimeToSeconds(now))));
        source.last_punct_sec.Set(
            static_cast<uint64_t>(SimTimeToSeconds(now)));
      } else if (field.name == "timestamp") {
        punctuation.bounds.emplace_back(
            f, Value::Uint(static_cast<uint64_t>(now)));
      }
    }
    if (!punctuation.bounds.empty()) {
      // The punctuation closes (and flushes) the source's open batch so it
      // arrives after every tuple injected before the heartbeat.
      source.open_batch.items.push_back(
          rts::MakePunctuationMessage(punctuation, source.schema));
      registry_.PublishBatch(stream_name, std::move(source.open_batch));
      source.open_batch.items.clear();
      source.last_punct_time = now;
    }
  }
  if (!any) {
    return Status::NotFound("no protocol sources on interface '" +
                            interface_name + "'");
  }
  ++heartbeats_;
  if (now > last_input_time_) last_input_time_ = now;
  MaybeEmitStats(now);
  MaybeRunShedCheck(now);
  if (threads_running_) {
    PumpStage(NodeStage::kLfta, options_.worker_poll_budget);
  } else if (processes_running_) {
    PumpProcessRound(options_.worker_poll_budget);
  }
  return Status::Ok();
}

Status Engine::InjectRow(const std::string& stream_name,
                         const rts::Row& row) {
  GS_RETURN_IF_ERROR(CheckAcceptingInput("InjectRow"));
  GS_ASSIGN_OR_RETURN(gsql::StreamSchema schema,
                      registry_.GetSchema(stream_name));
  rts::TupleCodec codec(schema);
  rts::StreamMessage message;
  message.kind = rts::StreamMessage::Kind::kTuple;
  codec.Encode(row, &message.payload);
  registry_.Publish(stream_name, message);
  if (threads_running_) {
    PumpStage(NodeStage::kLfta, options_.worker_poll_budget);
  } else if (processes_running_) {
    PumpProcessRound(options_.worker_poll_budget);
  }
  return Status::Ok();
}

Status Engine::InjectPunctuation(const std::string& stream_name, size_t field,
                                 const expr::Value& bound) {
  GS_RETURN_IF_ERROR(CheckAcceptingInput("InjectPunctuation"));
  GS_ASSIGN_OR_RETURN(gsql::StreamSchema schema,
                      registry_.GetSchema(stream_name));
  if (field >= schema.num_fields()) {
    return Status::OutOfRange("punctuation field out of range");
  }
  rts::Punctuation punctuation;
  punctuation.bounds.emplace_back(field, bound);
  registry_.Publish(stream_name,
                    rts::MakePunctuationMessage(punctuation, schema));
  if (threads_running_) {
    PumpStage(NodeStage::kLfta, options_.worker_poll_budget);
  } else if (processes_running_) {
    PumpProcessRound(options_.worker_poll_budget);
  }
  return Status::Ok();
}

Status Engine::EmitStatsSnapshot(SimTime now) {
  GS_RETURN_IF_ERROR(CheckAcceptingInput("EmitStatsSnapshot"));
  stats_source_->EmitSnapshot(now);
  last_stats_emit_ = now;
  if (now > last_input_time_) last_input_time_ = now;
  if (threads_running_) {
    PumpStage(NodeStage::kLfta, options_.worker_poll_budget);
  } else if (processes_running_) {
    PumpProcessRound(options_.worker_poll_budget);
  }
  return Status::Ok();
}

void Engine::MaybeEmitStats(SimTime now) {
  if (options_.stats_period <= 0) return;
  if (now - last_stats_emit_ < options_.stats_period) return;
  stats_source_->EmitSnapshot(now);
  last_stats_emit_ = now;
}

void Engine::MaybeRunShedCheck(SimTime now) {
  if (shed_controller_ == nullptr) return;
  if (last_shed_check_ != 0 &&
      now - last_shed_check_ < options_.shed.check_period) {
    return;
  }
  last_shed_check_ = now;
  PressureSignals signals;
  signals.max_ring_occupancy = registry_.MaxOccupancyFraction();
  signals.total_drops = registry_.TotalDropsAll();
  for (const auto& [name, source] : protocol_sources_) {
    if (source.last_punct_time > 0 && now > source.last_punct_time) {
      signals.max_punct_lag =
          std::max(signals.max_punct_lag, now - source.last_punct_time);
    }
  }
  for (const ops::LftaAggregateNode* node : lfta_agg_nodes_) {
    const size_t slots = node->table().num_slots();
    if (slots == 0) continue;
    signals.max_lfta_occupancy =
        std::max(signals.max_lfta_occupancy,
                 static_cast<double>(node->table().occupied()) /
                     static_cast<double>(slots));
  }
  shed_controller_->Check(signals);
}

Status Engine::AddNode(std::unique_ptr<rts::QueryNode> node) {
  GS_RETURN_IF_ERROR(CheckMutable("AddNode"));
  if (node == nullptr) return Status::InvalidArgument("null node");
  if (!registry_.HasStream(node->name())) {
    return Status::InvalidArgument(
        "custom node '" + node->name() +
        "' must declare its output stream before being added");
  }
  // Make the node's output visible to GSQL so queries can compose over it
  // (§3: the defrag operator feeds a query tree).
  GS_ASSIGN_OR_RETURN(gsql::StreamSchema schema,
                      registry_.GetSchema(node->name()));
  catalog_.PutStreamSchema(schema);
  // A user node's input reads are opaque (it subscribed through the
  // registry before this call): assume it reads every field of every
  // protocol source, present and future.
  user_nodes_present_ = true;
  for (auto& [source_name, source] : protocol_sources_) {
    MarkAllProtocolFields(source);
  }
  nodes_.push_back(std::move(node));
  // Custom nodes read stream channels, not raw packets: worker stage.
  node_stages_.resize(nodes_.size(), NodeStage::kHfta);
  RegisterNewNodeTelemetry();
  return Status::Ok();
}

size_t Engine::PumpStage(NodeStage stage, size_t budget_per_node) {
  size_t processed = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i < node_stages_.size() && node_stages_[i] != stage) continue;
    processed += nodes_[i]->PollCounted(budget_per_node);
  }
  return processed;
}

bool Engine::FlushSourceBatches() {
  bool published = false;
  for (auto& [stream_name, source] : protocol_sources_) {
    if (source.open_batch.items.empty()) continue;
    registry_.PublishBatch(stream_name, std::move(source.open_batch));
    source.open_batch.items.clear();
    published = true;
  }
  return published;
}

size_t Engine::Pump(size_t budget_per_node) {
  // A Pump is a request to make progress: injected tuples still sitting in
  // open source batches publish now rather than waiting for the batch-size
  // threshold (keeps inject→pump→read sequences working at any batch
  // size).
  FlushSourceBatches();
  if (threads_running_) {
    // Workers own the HFTA nodes; polling them here would add a second
    // consumer to their SPSC channels.
    return PumpStage(NodeStage::kLfta, budget_per_node);
  }
  if (processes_running_) return PumpProcessRound(budget_per_node);
  size_t processed = 0;
  for (auto& node : nodes_) {
    processed += node->PollCounted(budget_per_node);
  }
  return processed;
}

void Engine::PumpUntilIdle() {
  while (true) {
    if (Pump() > 0) continue;
    // Idle with space freed: retry punctuations parked on once-full rings
    // so windows close without waiting for the seal. Parked punctuations
    // may only be retried from their producing thread; with workers
    // running the producers of intermediate rings are the workers, so this
    // is deferred to FlushAll (which stops them first). In process mode
    // the parent retries only the rings it produces into (sources, LFTA
    // outputs, adopted nodes) — worker-produced rings' parked state lives
    // in the worker's address space.
    if (processes_running_) {
      size_t flushed = 0;
      for (const std::string& stream : parent_streams_) {
        flushed += registry_.FlushParkedPunctuations(stream);
      }
      if (flushed > 0) continue;
      break;
    }
    if (!threads_running_ && registry_.FlushParkedPunctuations() > 0) {
      continue;
    }
    break;
  }
}

void Engine::FlushAll() {
  if (flushed_) return;  // idempotent: the engine is already sealed
  if (processes_running_) {
    FlushAllProcesses();
    flushed_ = true;
    return;
  }
  // Barrier: take the worker pool down first, then drain everything from
  // this thread — deterministic regardless of worker scheduling, because
  // channels hand over their remaining contents in FIFO order.
  StopThreads();
  PumpUntilIdle();  // also publishes any open source batches
  // Deliver punctuations parked on once-full rings before flushing
  // operator state, so windows close through ordinary bounds where
  // possible. The loop ends when no parked punctuation could be placed
  // (e.g. a full subscriber ring nobody drains).
  while (registry_.FlushParkedPunctuations() > 0) PumpUntilIdle();
  // One terminal telemetry snapshot before the engine seals: the periodic
  // gate in MaybeEmitStats can skip the tail of the run, under-reporting
  // end-of-run counters to gs_stats consumers. Emitted before the node
  // flush below so stats-fed queries process it like any other input.
  if (options_.stats_period > 0) {
    stats_source_->EmitSnapshot(last_input_time_);
    last_stats_emit_ = last_input_time_;
    PumpUntilIdle();
  }
  // Flush upstream-to-downstream, pumping between rounds so flushed state
  // propagates through the chain.
  for (auto& node : nodes_) {
    node->Flush();
    PumpUntilIdle();
  }
  while (registry_.FlushParkedPunctuations() > 0) PumpUntilIdle();
  flushed_ = true;
}

Status Engine::StartThreads(size_t workers) {
  if (threads_running_) {
    return Status::FailedPrecondition("worker pool is already running");
  }
  if (processes_running_) {
    return Status::FailedPrecondition(
        "StartThreads: worker processes are running; the two pump modes "
        "are exclusive");
  }
  GS_RETURN_IF_ERROR(CheckAcceptingInput("StartThreads"));
  if (workers == 0) {
    return Status::InvalidArgument("StartThreads needs at least one worker");
  }
  node_stages_.resize(nodes_.size(), NodeStage::kHfta);

  std::vector<rts::QueryNode*> hfta_nodes;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (node_stages_[i] == NodeStage::kHfta) {
      hfta_nodes.push_back(nodes_[i].get());
    }
  }
  stop_workers_.store(false, std::memory_order_relaxed);
  threads_running_ = true;
  pump_mode_ = "threads";
  if (hfta_nodes.empty()) return Status::Ok();  // everything is LFTA-stage

  const size_t pool = std::min(workers, hfta_nodes.size());
  for (size_t w = 0; w < pool; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->waker = std::make_shared<rts::ConsumerWaker>();
    // Slot w's park histogram persists across start/stop cycles (the
    // registry reader must outlive this pool) and is registered once.
    if (w >= worker_park_ns_.size()) {
      worker_park_ns_.push_back(std::make_unique<telemetry::Histogram>());
      telemetry_.RegisterHistogram("worker" + std::to_string(w),
                                   metric::kParkNs,
                                   worker_park_ns_.back().get());
    }
    worker->park_ns = worker_park_ns_[w].get();
    workers_.push_back(std::move(worker));
  }
  for (size_t i = 0; i < hfta_nodes.size(); ++i) {
    workers_[i % pool]->nodes.push_back(hfta_nodes[i]);
  }
  // Wire each worker-owned node's input channels to that worker's waker so
  // pushes (tuples and punctuations) un-park it. Done before the threads
  // start, so the writes are published by thread creation.
  for (const auto& worker : workers_) {
    for (rts::QueryNode* node : worker->nodes) {
      for (const rts::Subscription& channel : node->inputs()) {
        channel->SetWaker(worker->waker);
      }
    }
  }
  for (const auto& worker : workers_) {
    worker->thread = std::thread(&Engine::WorkerLoop, this, worker.get());
  }
  return Status::Ok();
}

void Engine::StopThreads() {
  if (!threads_running_) return;
  stop_workers_.store(true, std::memory_order_release);
  for (const auto& worker : workers_) worker->waker->Wake();
  for (const auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  workers_.clear();
  threads_running_ = false;
}

void Engine::WorkerLoop(Worker* worker) {
  // Spin briefly on idle before parking; a push into any owned channel
  // wakes the park, and the timeout bounds any lost-wakeup window.
  constexpr int kSpinRounds = 64;
  constexpr std::chrono::microseconds kParkTimeout{200};
  int idle_rounds = 0;
  while (!stop_workers_.load(std::memory_order_acquire)) {
    size_t processed = 0;
    for (rts::QueryNode* node : worker->nodes) {
      processed += node->PollCounted(options_.worker_poll_budget);
    }
    if (processed > 0) {
      idle_rounds = 0;
      continue;
    }
    if (++idle_rounds < kSpinRounds) {
      std::this_thread::yield();
      continue;
    }
    const int64_t park_start = telemetry::MonotonicNowNs();
    worker->waker->Park(kParkTimeout);
    worker->park_ns->Record(
        static_cast<uint64_t>(telemetry::MonotonicNowNs() - park_start));
  }
}

Status Engine::StartProcesses(size_t workers) {
  if (processes_running_) {
    return Status::FailedPrecondition("worker processes are already running");
  }
  if (threads_running_) {
    return Status::FailedPrecondition(
        "StartProcesses: the threaded worker pool is running; call "
        "StopThreads first");
  }
  GS_RETURN_IF_ERROR(CheckAcceptingInput("StartProcesses"));
  if (!options_.process.enabled) {
    return Status::FailedPrecondition(
        "StartProcesses needs EngineOptions::process.enabled at "
        "construction — inter-node rings must be shm-backed before queries "
        "are added");
  }
  if (workers == 0) {
    return Status::InvalidArgument(
        "StartProcesses needs at least one worker");
  }
  // Drain pending async jit compiles before forking: the children inherit
  // the already-published kernel pointers, and the compile worker thread
  // (which does not survive fork) must not hold the jit mutex mid-fork.
  jit_->WaitIdle();
  node_stages_.resize(nodes_.size(), NodeStage::kHfta);
  std::vector<size_t> hfta;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (node_stages_[i] == NodeStage::kHfta) hfta.push_back(i);
  }
  processes_running_ = true;
  pump_mode_ = "processes";
  node_adopted_.assign(nodes_.size(), 0);
  process_groups_.clear();
  worker_adopted_.clear();
  worker_output_streams_.clear();
  adopted_resync_.store(0, std::memory_order_relaxed);
  parent_streams_ = registry_.StreamNames();
  if (hfta.empty()) return Status::Ok();  // everything is LFTA-stage

  const size_t pool = std::min(workers, hfta.size());
  process_groups_.assign(pool, {});
  for (size_t i = 0; i < hfta.size(); ++i) {
    process_groups_[i % pool].push_back(hfta[i]);
  }
  worker_adopted_.assign(pool, 0);
  worker_output_streams_.assign(pool, {});
  for (size_t w = 0; w < pool; ++w) {
    for (size_t idx : process_groups_[w]) {
      worker_output_streams_[w].push_back(nodes_[idx]->name());
    }
  }
  // The parent retries parked punctuations only on streams it produces
  // into; strip worker-owned outputs from the starting set.
  {
    std::vector<std::string> parent;
    for (const std::string& name : parent_streams_) {
      bool worker_owned = false;
      for (const auto& outputs : worker_output_streams_) {
        for (const std::string& output : outputs) {
          if (output == name) worker_owned = true;
        }
      }
      if (!worker_owned) parent.push_back(name);
    }
    parent_streams_ = std::move(parent);
  }
  // Tracer spans recorded in a child would die with its heap (and the
  // tracer's mutex must not be shared across fork); HFTA nodes run
  // untraced in process mode.
  if (tracer_ != nullptr) {
    for (size_t idx : hfta) nodes_[idx]->SetTracer(nullptr, 0);
  }
  // Shm metrics arena: bind every worker-owned node's counters and
  // histograms into shared fixed slots *before* the fork, so the children
  // inherit cells the parent's registry can read live. Each worker gets a
  // contiguous slot range; its restarted incarnations reset that range
  // under a new epoch and the parent's fold keeps aggregates monotone.
  worker_arena_ranges_.assign(pool, {});
  if (options_.process.metrics_arena_slots > 0) {
    if (metrics_arena_ == nullptr) {
      metrics_shm_ = rts::ShmSegment::Create(telemetry::MetricsArena::
          BytesForSlots(options_.process.metrics_arena_slots));
      metrics_arena_ = std::make_unique<telemetry::MetricsArena>(
          metrics_shm_->data(), metrics_shm_->size());
      telemetry_.Register("engine", metric::kMetricsArenaExhausted,
                          metrics_arena_->exhausted_counter());
    }
    for (size_t w = 0; w < pool; ++w) {
      const size_t begin = metrics_arena_->allocated();
      const std::string proc = "w" + std::to_string(w);
      for (size_t idx : process_groups_[w]) {
        telemetry_.BindEntityToArena(nodes_[idx]->name(),
                                     metrics_arena_.get(), proc);
      }
      worker_arena_ranges_[w] = {begin, metrics_arena_->allocated() - begin};
    }
  }
  // Torn-slot fault: arm the producer side of every subscriber ring before
  // forking, so whichever process publishes into the stream inherits the
  // armed flag.
  if (options_.fault.kind == FaultConfig::Kind::kTorn) {
    for (const rts::Subscription& channel :
         registry_.Subscribers(options_.fault.stream)) {
      channel->ArmTornFault(options_.fault.nth);
    }
  }
  supervisor_ = std::make_unique<Supervisor>(
      options_.process.supervisor, pool,
      [this](size_t w, uint32_t generation) {
        WorkerProcessLoop(w, generation);
      });
  if (!process_telemetry_registered_) {
    process_telemetry_registered_ = true;
    telemetry_.RegisterReader("engine", metric::kWorkerRestarts, [this] {
      return supervisor_ != nullptr ? supervisor_->restarts() : 0;
    });
    telemetry_.RegisterReader("engine", metric::kHeartbeatMisses, [this] {
      return supervisor_ != nullptr ? supervisor_->heartbeat_misses() : 0;
    });
    telemetry_.RegisterReader("engine", metric::kWorkersDegraded, [this] {
      return supervisor_ != nullptr ? supervisor_->degraded_count() : 0;
    });
    // Every restart and every degraded-worker adoption opens exactly one
    // punctuation-bounded recovery gap.
    telemetry_.RegisterReader("engine", metric::kResyncGaps, [this] {
      return (supervisor_ != nullptr ? supervisor_->restarts() : 0) +
             adopted_resync_.load(std::memory_order_relaxed);
    });
  }
  return supervisor_->Start();
}

void Engine::StopProcesses() {
  if (!processes_running_) return;
  if (supervisor_ != nullptr) supervisor_->StopAll();
  processes_running_ = false;
  // The children's operator state died with them; adopt every group with a
  // resync so in-process pumping resumes at a punctuation boundary.
  for (size_t w = 0; w < process_groups_.size(); ++w) {
    AdoptWorkerNodes(w, /*resync=*/true);
  }
}

void Engine::AdoptWorkerNodes(size_t worker, bool resync) {
  if (worker_adopted_[worker]) return;
  worker_adopted_[worker] = 1;
  for (size_t idx : process_groups_[worker]) {
    node_adopted_[idx] = 1;
    // The parent is the node's polling thread now; its metrics rows move
    // under the parent's proc tag. The counters stay arena-bound (single
    // writer again, just a different process), so the fold path still
    // serves the reads.
    telemetry_.SetEntityProc(nodes_[idx]->name(), telemetry::kProcRts);
    if (resync) {
      for (const rts::Subscription& input : nodes_[idx]->inputs()) {
        input->BeginResync();
      }
    }
    // The parent produces into the adopted node's output rings now.
    parent_streams_.push_back(nodes_[idx]->name());
  }
  if (resync) adopted_resync_.fetch_add(1, std::memory_order_relaxed);
}

void Engine::AdoptDegradedWorkers() {
  if (supervisor_ == nullptr) return;
  for (size_t w = 0; w < process_groups_.size(); ++w) {
    if (worker_adopted_[w]) continue;
    if (supervisor_->state(w) == Supervisor::WorkerState::kDegraded) {
      AdoptWorkerNodes(w, /*resync=*/true);
    }
  }
}

size_t Engine::PumpProcessRound(size_t budget_per_node) {
  AdoptDegradedWorkers();
  size_t processed = PumpStage(NodeStage::kLfta, budget_per_node);
  for (size_t i = 0; i < node_adopted_.size(); ++i) {
    if (node_adopted_[i]) processed += nodes_[i]->PollCounted(budget_per_node);
  }
  return processed;
}

void Engine::DrainProcessesUntilIdle() {
  for (;;) {
    // Pump() covers source batches, the LFTA stage, and adopted nodes.
    size_t progress = Pump(options_.worker_poll_budget);
    for (const std::string& stream : parent_streams_) {
      progress += registry_.FlushParkedPunctuations(stream);
    }
    if (supervisor_ != nullptr) {
      for (size_t w = 0; w < process_groups_.size(); ++w) {
        if (worker_adopted_[w]) continue;
        uint64_t acked = 0;
        if (supervisor_->SendCommand(w, WorkerCommand::kDrain, 0, &acked)) {
          progress += static_cast<size_t>(acked);
        } else {
          // Died or hung while draining: fail over and run one more round
          // so the adopted nodes consume what their process left behind.
          AdoptWorkerNodes(w, /*resync=*/true);
          progress += 1;
        }
      }
    }
    if (progress == 0) return;
  }
}

void Engine::FlushAllProcesses() {
  // Seal first: from here a dying worker degrades instead of restarting,
  // so the flush protocol below never waits on a respawn.
  if (supervisor_ != nullptr) supervisor_->BeginSeal();
  AdoptDegradedWorkers();
  PumpUntilIdle();
  if (options_.stats_period > 0) {
    stats_source_->EmitSnapshot(last_input_time_);
    last_stats_emit_ = last_input_time_;
    PumpUntilIdle();
  }
  // Flush node-by-node in global upstream-first order (nodes_ order), so
  // flushed state propagates down the chain exactly as in the
  // single-process seal. Worker-owned nodes flush by command inside their
  // owning process; a worker that died or hangs mid-seal fails over — the
  // parent adopts its pristine node copies, resynchronizes their inputs,
  // and flushes locally.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    size_t owner = 0;
    size_t local = 0;
    bool parent_owned = true;
    if (node_stages_[i] == NodeStage::kHfta && !node_adopted_[i]) {
      for (size_t w = 0; w < process_groups_.size() && parent_owned; ++w) {
        for (size_t l = 0; l < process_groups_[w].size(); ++l) {
          if (process_groups_[w][l] == i) {
            owner = w;
            local = l;
            parent_owned = false;
            break;
          }
        }
      }
    }
    if (parent_owned) {
      nodes_[i]->Flush();
    } else if (!supervisor_->SendCommand(owner, WorkerCommand::kFlushNode,
                                         local, nullptr)) {
      AdoptWorkerNodes(owner, /*resync=*/true);
      nodes_[i]->Flush();
    }
    DrainProcessesUntilIdle();
  }
  if (supervisor_ != nullptr) supervisor_->StopAll();
  processes_running_ = false;
  // Anything still in the rings (a dead worker's unconsumed input,
  // stragglers) drains in-process now. Cleanly sealed workers left their
  // rings empty, so adopting without a resync changes nothing for them.
  for (size_t w = 0; w < process_groups_.size(); ++w) {
    AdoptWorkerNodes(w, /*resync=*/false);
  }
  PumpUntilIdle();
  while (registry_.FlushParkedPunctuations() > 0) PumpUntilIdle();
}

void Engine::WorkerProcessLoop(size_t worker, uint32_t generation) {
  WorkerControl* ctrl = supervisor_->control(worker);
  const std::vector<size_t>& group = process_groups_[worker];
  // A restarted incarnation forked from the parent's pristine operator
  // state: the dead incarnation's partial groups are gone, so discard
  // mid-window input until the next punctuation boundary re-anchors the
  // stream. The ring's read position itself lives in shm and carries over.
  if (generation > 1) {
    // Re-zero this worker's metric slots under the new generation's epoch:
    // the fresh incarnation's counters restart from the fork-time heap
    // values otherwise, and the parent's fold needs the epoch bump to bank
    // the dead incarnation's progress instead of seeing a regression.
    if (metrics_arena_ != nullptr && worker_arena_ranges_[worker].count > 0) {
      metrics_arena_->ResetRange(worker_arena_ranges_[worker].begin,
                                 worker_arena_ranges_[worker].count,
                                 generation);
    }
    for (size_t idx : group) {
      for (const rts::Subscription& input : nodes_[idx]->inputs()) {
        input->BeginResync();
      }
    }
  }
  FaultInjector injector(options_.fault, worker, &ctrl->fault_fired);
  uint64_t processed_total =
      ctrl->msgs_processed.load(std::memory_order_relaxed);
  int idle_rounds = 0;
  for (;;) {
    if (injector.MaybeFire(processed_total)) {
      // Stalled by fault injection: alive but silent — no heartbeat, no
      // work, exactly what a hung worker looks like from outside.
      usleep(1000);
      continue;
    }
    ctrl->heartbeat.store(
        ctrl->heartbeat.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    uint64_t arg = 0;
    uint64_t seq = 0;
    switch (Supervisor::PendingCommand(ctrl, &arg, &seq)) {
      case WorkerCommand::kFlushNode:
        if (arg < group.size()) nodes_[group[arg]]->Flush();
        Supervisor::Ack(ctrl, seq,
                        DrainWorkerNodes(worker, ctrl, &processed_total));
        continue;
      case WorkerCommand::kDrain:
        Supervisor::Ack(ctrl, seq,
                        DrainWorkerNodes(worker, ctrl, &processed_total));
        continue;
      case WorkerCommand::kExit:
        Supervisor::Ack(ctrl, seq, 0);
        _exit(0);
      case WorkerCommand::kNone:
        break;
    }
    size_t processed = 0;
    for (size_t idx : group) {
      processed += nodes_[idx]->PollCounted(options_.worker_poll_budget);
    }
    if (processed > 0) {
      processed_total += processed;
      ctrl->msgs_processed.store(processed_total, std::memory_order_relaxed);
      idle_rounds = 0;
      continue;
    }
    // Idle: retry punctuations parked on rings this worker produces into
    // (parked state is producer-side and lives in this address space).
    for (size_t idx : group) {
      registry_.FlushParkedPunctuations(nodes_[idx]->name());
    }
    if (++idle_rounds < 64) {
      std::this_thread::yield();
    } else {
      idle_rounds = 64;  // keep heartbeating at a bounded idle cost
      usleep(200);
    }
  }
}

size_t Engine::DrainWorkerNodes(size_t worker, WorkerControl* control,
                                uint64_t* processed_total) {
  size_t total = 0;
  for (;;) {
    size_t round = 0;
    for (size_t idx : process_groups_[worker]) {
      round += nodes_[idx]->PollCounted(options_.worker_poll_budget);
    }
    for (size_t idx : process_groups_[worker]) {
      round += registry_.FlushParkedPunctuations(nodes_[idx]->name());
    }
    // A long drain must not read as a hang.
    control->heartbeat.store(
        control->heartbeat.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    if (round == 0) break;
    total += round;
  }
  *processed_total += total;
  control->msgs_processed.store(*processed_total, std::memory_order_relaxed);
  return total;
}

std::vector<Engine::NodeStats> Engine::GetNodeStats() const {
  std::vector<NodeStats> stats;
  stats.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    stats.push_back({node->name(), node->tuples_in(), node->tuples_out(),
                     node->eval_errors()});
  }
  return stats;
}

}  // namespace gigascope::core
