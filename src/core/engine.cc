#include "core/engine.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "core/compiled_query.h"
#include "gsql/parser.h"
#include "net/headers.h"
#include "rts/punctuation.h"
#include "telemetry/metric_names.h"

namespace gigascope::core {

using expr::Value;
using gsql::DataType;
namespace metric = telemetry::metric;

TupleSubscription::TupleSubscription(rts::Subscription channel,
                                     gsql::StreamSchema schema)
    : channel_(std::move(channel)), codec_(std::move(schema)) {}

std::optional<rts::Row> TupleSubscription::NextRow() {
  rts::StreamMessage message;
  while (channel_->TryPop(&message)) {
    if (message.kind != rts::StreamMessage::Kind::kTuple) continue;
    auto row = codec_.Decode(
        ByteSpan(message.payload.data(), message.payload.size()));
    if (row.ok()) return std::move(row).value();
  }
  return std::nullopt;
}

Engine::Engine(EngineOptions options) : options_(options) {
  if (options_.functions == nullptr) {
    options_.functions = udf::FunctionRegistry::Default();
  }
  // Built-in protocols.
  GS_CHECK(catalog_.AddSchema(gsql::Catalog::BuiltinPacketSchema()).ok());
  GS_CHECK(catalog_.AddSchema(gsql::Catalog::BuiltinNetflowSchema()).ok());
  // The self-telemetry stream: registered in both the catalog and the
  // stream registry up front, so any query can `FROM gs_stats` through the
  // normal planner path, exactly like a user-declared stream.
  GS_CHECK(catalog_.AddSchema(gsql::Catalog::BuiltinStatsSchema()).ok());
  GS_CHECK(registry_.DeclareStream(gsql::Catalog::BuiltinStatsSchema()).ok());
  stats_source_ =
      std::make_unique<telemetry::StatsSource>(&telemetry_, &registry_);
  telemetry_.Register("engine", metric::kHeartbeats, &heartbeats_);
  telemetry_.Register("engine", metric::kStatsSnapshots,
                      stats_source_->snapshots_counter());
  if (options_.trace_sample > 0) {
    tracer_ = std::make_unique<telemetry::Tracer>(options_.trace_sample,
                                                  options_.trace_seed);
    tracer_->SetTrackName(0, "inject");
    telemetry_.Register("engine", metric::kTraceSampled,
                        tracer_->sampled_counter());
    telemetry_.Register("engine", metric::kTraceDroppedEvents,
                        tracer_->dropped_events_counter());
  }
}

Engine::~Engine() { StopThreads(); }

Status Engine::CheckMutable(const char* operation) const {
  if (threads_running_) {
    return Status::FailedPrecondition(
        std::string(operation) +
        ": the worker pool is running; call StopThreads first");
  }
  return Status::Ok();
}

Status Engine::CheckAcceptingInput(const char* operation) const {
  if (flushed_) {
    return Status::FailedPrecondition(
        std::string(operation) +
        ": the engine is flushed (FlushAll is end-of-stream); no further "
        "input is accepted");
  }
  return Status::Ok();
}

void Engine::AddInterface(const std::string& name) {
  catalog_.AddInterface(name);
}

Status Engine::ExecuteDdl(std::string_view ddl) {
  GS_RETURN_IF_ERROR(CheckMutable("ExecuteDdl"));
  GS_ASSIGN_OR_RETURN(gsql::ParsedProgram program, gsql::Parse(ddl));
  for (const gsql::Statement& statement : program.statements) {
    const auto* create = std::get_if<gsql::CreateStmt>(&statement);
    if (create == nullptr) {
      return Status::InvalidArgument(
          "ExecuteDdl accepts only CREATE statements; use AddQuery for "
          "queries");
    }
    GS_RETURN_IF_ERROR(catalog_.AddSchema(create->schema));
  }
  return Status::Ok();
}

Status Engine::DeclareStream(const gsql::StreamSchema& schema) {
  GS_RETURN_IF_ERROR(CheckMutable("DeclareStream"));
  if (schema.kind() != gsql::StreamKind::kStream) {
    return Status::InvalidArgument(
        "DeclareStream declares Stream schemas; protocols come from DDL");
  }
  if (!catalog_.HasSchema(schema.name())) {
    GS_RETURN_IF_ERROR(catalog_.AddSchema(schema));
  }
  return registry_.DeclareStream(schema);
}

Status Engine::EnsureProtocolSource(const std::string& interface_name,
                                    const std::string& protocol) {
  std::string stream_name = ProtocolStreamName(interface_name, protocol);
  if (protocol_sources_.count(stream_name) > 0) return Status::Ok();
  GS_ASSIGN_OR_RETURN(gsql::StreamSchema schema,
                      catalog_.GetSchema(protocol));
  // Built in place: the telemetry counters are neither movable nor
  // copyable, and map nodes are stable, so the registry can point at them.
  ProtocolSource& source = protocol_sources_[stream_name];
  source.stream_name = stream_name;
  source.schema = gsql::StreamSchema(stream_name, gsql::StreamKind::kStream,
                                     schema.fields());
  source.codec = std::make_unique<rts::TupleCodec>(source.schema);
  Status declared = registry_.DeclareStream(source.schema);
  if (!declared.ok()) {
    protocol_sources_.erase(stream_name);
    return declared;
  }
  telemetry_.Register(stream_name, metric::kPackets, &source.packets);
  telemetry_.Register(stream_name, metric::kLastPunctSec,
                      &source.last_punct_sec);
  telemetry_.RegisterHistogram(stream_name, metric::kPunctLagNs,
                               &source.punct_lag);
  return Status::Ok();
}

Status Engine::EnsureSources(const plan::PlanPtr& plan) {
  if (plan == nullptr) return Status::Ok();
  if (plan->kind == plan::PlanKind::kSource && plan->source_is_protocol) {
    GS_RETURN_IF_ERROR(
        EnsureProtocolSource(plan->interface_name, plan->source_stream));
  }
  for (const plan::PlanPtr& child : plan->children) {
    GS_RETURN_IF_ERROR(EnsureSources(child));
  }
  return Status::Ok();
}

Result<QueryInfo> Engine::AddQuery(
    std::string_view gsql_text,
    const std::map<std::string, expr::Value>& params) {
  GS_RETURN_IF_ERROR(CheckMutable("AddQuery"));
  // True-up stage and telemetry bookkeeping if an earlier instantiation
  // failed partway.
  node_stages_.resize(nodes_.size(), NodeStage::kHfta);
  RegisterNewNodeTelemetry();
  const size_t first_new_node = nodes_.size();
  GS_ASSIGN_OR_RETURN(gsql::Statement statement,
                      gsql::ParseStatement(gsql_text));

  // Extract the DEFINE block (shared by SELECT and MERGE).
  const gsql::DefineBlock* define = nullptr;
  if (const auto* select = std::get_if<gsql::SelectStmt>(&statement)) {
    define = &select->define;
  } else if (const auto* merge = std::get_if<gsql::MergeStmt>(&statement)) {
    define = &merge->define;
  } else {
    return Status::InvalidArgument(
        "AddQuery accepts SELECT or MERGE statements; use ExecuteDdl for "
        "CREATE");
  }

  // Resolve declared parameters to slots and instantiation-time values.
  plan::PlannerOptions planner_options;
  planner_options.resolver = options_.functions;
  std::vector<Value> param_values;
  std::vector<std::string> param_names;
  for (const auto& decl : define->params) {
    planner_options.params.emplace_back(decl.name, decl.type);
    param_names.push_back(decl.name);
    auto it = params.find(decl.name);
    Value value;
    if (it != params.end()) {
      GS_ASSIGN_OR_RETURN(value, expr::CastValue(it->second, decl.type));
    } else if (decl.default_value != nullptr) {
      const auto* literal =
          std::get_if<gsql::LiteralExpr>(&decl.default_value->node);
      if (literal == nullptr) {
        return Status::InvalidArgument("parameter '" + decl.name +
                                       "' default must be a literal");
      }
      switch (literal->type) {
        case DataType::kInt:
          value = Value::Int(literal->int_value);
          break;
        case DataType::kUint:
        case DataType::kIp:
          value = Value::Uint(literal->uint_value);
          break;
        case DataType::kFloat:
          value = Value::Float(literal->float_value);
          break;
        case DataType::kString:
          value = Value::String(literal->string_value);
          break;
        case DataType::kBool:
          value = Value::Bool(literal->bool_value);
          break;
      }
      GS_ASSIGN_OR_RETURN(value, expr::CastValue(value, decl.type));
    } else {
      return Status::InvalidArgument("parameter '" + decl.name +
                                     "' has no value and no default");
    }
    param_values.push_back(std::move(value));
  }

  // Plan.
  plan::PlannedQuery planned;
  if (const auto* select = std::get_if<gsql::SelectStmt>(&statement)) {
    GS_ASSIGN_OR_RETURN(gsql::ResolvedSelect resolved,
                        gsql::AnalyzeSelect(*select, catalog_));
    GS_ASSIGN_OR_RETURN(planned, plan::PlanSelect(resolved, planner_options));
  } else {
    const auto& merge = std::get<gsql::MergeStmt>(statement);
    GS_ASSIGN_OR_RETURN(gsql::ResolvedMerge resolved,
                        gsql::AnalyzeMerge(merge, catalog_));
    GS_ASSIGN_OR_RETURN(planned, plan::PlanMerge(resolved, planner_options));
  }
  if (registry_.HasStream(planned.name)) {
    return Status::AlreadyExists("a query named '" + planned.name +
                                 "' is already running");
  }

  // Split into LFTA/HFTA.
  GS_ASSIGN_OR_RETURN(plan::SplitQuery split, plan::SplitPlan(planned));

  QueryInfo info;
  info.name = split.name;
  info.lfta_name = split.lfta_name;
  info.has_lfta = split.lfta != nullptr;
  info.has_hfta = split.hfta != nullptr;
  info.split_aggregation = split.split_aggregation;
  info.unbounded_aggregation = planned.unbounded_aggregation;
  info.has_nic_program = split.has_nic_program;
  info.nic_program = split.nic_program;
  info.snap_len = split.snap_len;
  info.plan_text = "-- logical --\n" + planned.root->ToString();
  if (split.lfta != nullptr) {
    info.plan_text += "-- lfta --\n" + split.lfta->ToString();
  }
  if (split.hfta != nullptr) {
    info.plan_text += "-- hfta --\n" + split.hfta->ToString();
  }

  // Instantiate: LFTA first (it declares the mangled stream the HFTA
  // reads), then the HFTA.
  QueryParams query_params;
  query_params.block =
      std::make_shared<std::vector<Value>>(param_values);
  query_params.names = param_names;

  InstantiationContext ctx;
  ctx.registry = &registry_;
  ctx.params = query_params.block;
  ctx.param_values = param_values;
  ctx.channel_capacity = options_.channel_capacity;
  ctx.lfta_hash_log2 = options_.lfta_hash_log2;
  ctx.nodes = &nodes_;

  if (split.lfta != nullptr) {
    GS_RETURN_IF_ERROR(EnsureSources(split.lfta));
    ctx.use_lfta_table = split.split_aggregation;
    std::string lfta_output =
        split.hfta == nullptr ? split.name : split.lfta_name;
    GS_RETURN_IF_ERROR(InstantiatePlan(split.lfta, lfta_output, &ctx));
  }
  // Nodes instantiated so far belong to the LFTA plan and stay on the
  // inject thread in threaded mode; everything after runs on workers.
  node_stages_.resize(nodes_.size(), NodeStage::kLfta);
  if (split.hfta != nullptr) {
    GS_RETURN_IF_ERROR(EnsureSources(split.hfta));
    ctx.use_lfta_table = false;
    GS_RETURN_IF_ERROR(InstantiatePlan(split.hfta, split.name, &ctx));
  }
  node_stages_.resize(nodes_.size(), NodeStage::kHfta);

  // Register the query's output schema in the catalog so later queries can
  // compose over it (§2.2).
  catalog_.PutStreamSchema(planned.output_schema);
  query_params_.emplace(info.name, std::move(query_params));
  query_infos_.push_back(info);
  // The node publishing under the query's public name is its terminal:
  // tuples it emits while processing a traced message record the
  // inject→emit latency. Marked before telemetry registration so the
  // e2e_latency_ns histogram is registered for it.
  for (size_t i = first_new_node; i < nodes_.size(); ++i) {
    if (nodes_[i]->name() == split.name) nodes_[i]->set_terminal(true);
  }
  RegisterNewNodeTelemetry();
  return info;
}

void Engine::RegisterNewNodeTelemetry() {
  for (; telemetry_registered_nodes_ < nodes_.size();
       ++telemetry_registered_nodes_) {
    rts::QueryNode* node = nodes_[telemetry_registered_nodes_].get();
    if (tracer_ != nullptr) {
      const uint32_t track = next_track_id_++;
      node->SetTracer(tracer_.get(), track);
      tracer_->SetTrackName(track, node->name());
    }
    node->RegisterTelemetry(&telemetry_);
  }
}

Status Engine::SetParam(const std::string& query_name,
                        const std::string& param_name, expr::Value value) {
  // The param block is read by worker-owned nodes without locks.
  GS_RETURN_IF_ERROR(CheckMutable("SetParam"));
  auto it = query_params_.find(query_name);
  if (it == query_params_.end()) {
    return Status::NotFound("no query named '" + query_name + "'");
  }
  for (size_t i = 0; i < it->second.names.size(); ++i) {
    if (it->second.names[i] == param_name) {
      DataType declared = (*it->second.block)[i].type();
      GS_ASSIGN_OR_RETURN(Value casted, expr::CastValue(value, declared));
      (*it->second.block)[i] = std::move(casted);
      return Status::Ok();
    }
  }
  return Status::NotFound("query '" + query_name + "' has no parameter '" +
                          param_name + "'");
}

Result<std::unique_ptr<TupleSubscription>> Engine::Subscribe(
    const std::string& stream_name, size_t capacity) {
  GS_RETURN_IF_ERROR(CheckMutable("Subscribe"));
  GS_ASSIGN_OR_RETURN(gsql::StreamSchema schema,
                      registry_.GetSchema(stream_name));
  GS_ASSIGN_OR_RETURN(rts::Subscription channel,
                      registry_.Subscribe(stream_name, capacity));
  // Subscriber-side channels are observable too; the readers share
  // ownership so the ring outlives any snapshot.
  std::string entity =
      stream_name + "#sub" + std::to_string(subscriber_seq_++);
  rts::Subscription shared = channel;
  const std::string ring = metric::kRingPrefix;
  telemetry_.RegisterReader(entity, ring + metric::kRingPushedSuffix,
                            [shared] { return shared->pushed(); });
  telemetry_.RegisterReader(entity, ring + metric::kRingDroppedSuffix,
                            [shared] { return shared->dropped(); });
  telemetry_.RegisterReader(entity, ring + metric::kRingSizeSuffix,
                            [shared] {
                              return static_cast<uint64_t>(shared->size());
                            });
  telemetry_.RegisterReader(entity, ring + metric::kRingHighWaterSuffix,
                            [shared] {
                              return static_cast<uint64_t>(
                                  shared->high_water_mark());
                            });
  telemetry_.RegisterHistogram(
      entity, ring + metric::kRingOccupancySuffix,
      [shared] { return shared->occupancy_histogram().Snapshot(); });
  return std::make_unique<TupleSubscription>(std::move(channel),
                                             std::move(schema));
}

rts::Row InterpretPacket(const gsql::StreamSchema& schema,
                         const net::Packet& packet) {
  auto decoded_result = net::DecodePacket(packet.view());
  const net::DecodedPacket* decoded =
      decoded_result.ok() ? &decoded_result.value() : nullptr;

  rts::Row row;
  row.reserve(schema.num_fields());
  for (size_t f = 0; f < schema.num_fields(); ++f) {
    const gsql::FieldDef& field = schema.field(f);
    const std::string& name = field.name;
    if (name == "time") {
      row.push_back(Value::Uint(
          static_cast<uint64_t>(SimTimeToSeconds(packet.timestamp))));
    } else if (name == "timestamp") {
      row.push_back(Value::Uint(static_cast<uint64_t>(packet.timestamp)));
    } else if (name == "len") {
      row.push_back(Value::Uint(packet.orig_len));
    } else if (decoded != nullptr && decoded->ip.has_value() &&
               name == "srcIP") {
      row.push_back(Value::Ip(decoded->ip->src_addr));
    } else if (decoded != nullptr && decoded->ip.has_value() &&
               name == "destIP") {
      row.push_back(Value::Ip(decoded->ip->dst_addr));
    } else if (decoded != nullptr && name == "srcPort") {
      uint16_t port = decoded->is_tcp()   ? decoded->tcp->src_port
                      : decoded->is_udp() ? decoded->udp->src_port
                                          : 0;
      row.push_back(Value::Uint(port));
    } else if (decoded != nullptr && name == "destPort") {
      uint16_t port = decoded->is_tcp()   ? decoded->tcp->dst_port
                      : decoded->is_udp() ? decoded->udp->dst_port
                                          : 0;
      row.push_back(Value::Uint(port));
    } else if (decoded != nullptr && decoded->ip.has_value() &&
               name == "protocol") {
      row.push_back(Value::Uint(decoded->ip->protocol));
    } else if (decoded != nullptr && name == "ipVersion") {
      row.push_back(Value::Uint(decoded->ip.has_value() ? 4 : 0));
    } else if (decoded != nullptr && name == "tcpFlags") {
      row.push_back(
          Value::Uint(decoded->is_tcp() ? decoded->tcp->flags : 0));
    } else if (decoded != nullptr && name == "tcpSeq") {
      row.push_back(Value::Uint(decoded->is_tcp() ? decoded->tcp->seq : 0));
    } else if (decoded != nullptr && decoded->ip.has_value() &&
               name == "ipId") {
      row.push_back(Value::Uint(decoded->ip->identification));
    } else if (decoded != nullptr && decoded->ip.has_value() &&
               name == "fragOffset") {
      row.push_back(Value::Uint(decoded->ip->fragment_offset));
    } else if (decoded != nullptr && decoded->ip.has_value() &&
               name == "moreFrags") {
      row.push_back(Value::Uint(decoded->ip->more_fragments() ? 1 : 0));
    } else if (decoded != nullptr && decoded->ip.has_value() &&
               name == "ipPayload") {
      // The IP payload including any transport header — what an IP
      // defragmenter reassembles.
      size_t start = net::kEthernetHeaderLen + decoded->ip->header_len;
      std::string ip_payload;
      if (packet.bytes.size() > start) {
        ip_payload.assign(
            reinterpret_cast<const char*>(packet.bytes.data() + start),
            packet.bytes.size() - start);
      }
      row.push_back(Value::String(std::move(ip_payload)));
    } else if (name == "payload") {
      std::string payload;
      if (decoded != nullptr) {
        payload.assign(
            reinterpret_cast<const char*>(decoded->payload.data()),
            decoded->payload.size());
      }
      row.push_back(Value::String(std::move(payload)));
    } else {
      row.push_back(Value::Default(field.type));
    }
  }
  return row;
}

Status Engine::InjectPacket(const std::string& interface_name,
                            const net::Packet& packet) {
  GS_RETURN_IF_ERROR(CheckAcceptingInput("InjectPacket"));
  // One sampling decision per packet: every protocol stream's copy of a
  // traced packet carries the same trace id.
  uint64_t trace_id = 0;
  int64_t trace_ns = 0;
  if (tracer_ != nullptr) {
    trace_id = tracer_->SampleInject();
    if (trace_id != 0) {
      trace_ns = tracer_->NowNs();
      tracer_->RecordInstant("inject", /*tid=*/0, trace_id, trace_ns);
    }
  }
  bool any = false;
  for (auto& [stream_name, source] : protocol_sources_) {
    if (stream_name.rfind(interface_name + ".", 0) != 0) continue;
    any = true;
    rts::Row row = InterpretPacket(source.schema, packet);
    rts::StreamMessage message;
    message.kind = rts::StreamMessage::Kind::kTuple;
    message.trace_id = trace_id;
    message.trace_ns = trace_ns;
    source.codec->Encode(row, &message.payload);
    registry_.Publish(stream_name, message);
    source.last_row = std::move(row);
    ++source.packets;
    if (source.last_punct_time > 0 &&
        packet.timestamp >= source.last_punct_time) {
      source.punct_lag.Record(
          static_cast<uint64_t>(packet.timestamp - source.last_punct_time));
    }
    if (options_.punctuation_interval > 0 &&
        source.packets.value() % options_.punctuation_interval == 0) {
      rts::Punctuation punctuation;
      for (size_t f = 0; f < source.schema.num_fields(); ++f) {
        const gsql::OrderSpec& order = source.schema.field(f).order;
        if (!order.IsIncreasingLike()) continue;
        if (source.schema.field(f).type == DataType::kString) continue;
        punctuation.bounds.emplace_back(f, source.last_row[f]);
        if (source.schema.field(f).name == "time") {
          source.last_punct_sec.Set(source.last_row[f].uint_value());
        }
      }
      if (!punctuation.bounds.empty()) {
        rts::StreamMessage punct_message =
            rts::MakePunctuationMessage(punctuation, source.schema);
        // Punctuation triggered by a traced packet carries its context:
        // aggregate groups flushed by this punctuation downstream inherit
        // the trace, so e2e latency covers inject -> group close even when
        // the close is punctuation-driven.
        punct_message.trace_id = trace_id;
        punct_message.trace_ns = trace_ns;
        registry_.Publish(stream_name, punct_message);
        source.last_punct_time = packet.timestamp;
      }
    }
  }
  if (!any) {
    return Status::NotFound("no protocol sources on interface '" +
                            interface_name + "' (add a query first)");
  }
  MaybeEmitStats(packet.timestamp);
  // Threaded mode: LFTAs run next to the capture loop (§4), so drive them
  // here; their outputs wake the HFTA workers.
  if (threads_running_) {
    PumpStage(NodeStage::kLfta, options_.worker_poll_budget);
  }
  return Status::Ok();
}

Status Engine::InjectHeartbeat(const std::string& interface_name,
                               SimTime now) {
  GS_RETURN_IF_ERROR(CheckAcceptingInput("InjectHeartbeat"));
  bool any = false;
  for (auto& [stream_name, source] : protocol_sources_) {
    if (stream_name.rfind(interface_name + ".", 0) != 0) continue;
    any = true;
    rts::Punctuation punctuation;
    for (size_t f = 0; f < source.schema.num_fields(); ++f) {
      const gsql::FieldDef& field = source.schema.field(f);
      if (!field.order.IsIncreasingLike()) continue;
      if (field.name == "time") {
        punctuation.bounds.emplace_back(
            f, Value::Uint(static_cast<uint64_t>(SimTimeToSeconds(now))));
        source.last_punct_sec.Set(
            static_cast<uint64_t>(SimTimeToSeconds(now)));
      } else if (field.name == "timestamp") {
        punctuation.bounds.emplace_back(
            f, Value::Uint(static_cast<uint64_t>(now)));
      }
    }
    if (!punctuation.bounds.empty()) {
      registry_.Publish(stream_name, rts::MakePunctuationMessage(
                                         punctuation, source.schema));
      source.last_punct_time = now;
    }
  }
  if (!any) {
    return Status::NotFound("no protocol sources on interface '" +
                            interface_name + "'");
  }
  ++heartbeats_;
  MaybeEmitStats(now);
  if (threads_running_) {
    PumpStage(NodeStage::kLfta, options_.worker_poll_budget);
  }
  return Status::Ok();
}

Status Engine::InjectRow(const std::string& stream_name,
                         const rts::Row& row) {
  GS_RETURN_IF_ERROR(CheckAcceptingInput("InjectRow"));
  GS_ASSIGN_OR_RETURN(gsql::StreamSchema schema,
                      registry_.GetSchema(stream_name));
  rts::TupleCodec codec(schema);
  rts::StreamMessage message;
  message.kind = rts::StreamMessage::Kind::kTuple;
  codec.Encode(row, &message.payload);
  registry_.Publish(stream_name, message);
  if (threads_running_) {
    PumpStage(NodeStage::kLfta, options_.worker_poll_budget);
  }
  return Status::Ok();
}

Status Engine::InjectPunctuation(const std::string& stream_name, size_t field,
                                 const expr::Value& bound) {
  GS_RETURN_IF_ERROR(CheckAcceptingInput("InjectPunctuation"));
  GS_ASSIGN_OR_RETURN(gsql::StreamSchema schema,
                      registry_.GetSchema(stream_name));
  if (field >= schema.num_fields()) {
    return Status::OutOfRange("punctuation field out of range");
  }
  rts::Punctuation punctuation;
  punctuation.bounds.emplace_back(field, bound);
  registry_.Publish(stream_name,
                    rts::MakePunctuationMessage(punctuation, schema));
  if (threads_running_) {
    PumpStage(NodeStage::kLfta, options_.worker_poll_budget);
  }
  return Status::Ok();
}

Status Engine::EmitStatsSnapshot(SimTime now) {
  GS_RETURN_IF_ERROR(CheckAcceptingInput("EmitStatsSnapshot"));
  stats_source_->EmitSnapshot(now);
  last_stats_emit_ = now;
  if (threads_running_) {
    PumpStage(NodeStage::kLfta, options_.worker_poll_budget);
  }
  return Status::Ok();
}

void Engine::MaybeEmitStats(SimTime now) {
  if (options_.stats_period <= 0) return;
  if (now - last_stats_emit_ < options_.stats_period) return;
  stats_source_->EmitSnapshot(now);
  last_stats_emit_ = now;
}

Status Engine::AddNode(std::unique_ptr<rts::QueryNode> node) {
  GS_RETURN_IF_ERROR(CheckMutable("AddNode"));
  if (node == nullptr) return Status::InvalidArgument("null node");
  if (!registry_.HasStream(node->name())) {
    return Status::InvalidArgument(
        "custom node '" + node->name() +
        "' must declare its output stream before being added");
  }
  // Make the node's output visible to GSQL so queries can compose over it
  // (§3: the defrag operator feeds a query tree).
  GS_ASSIGN_OR_RETURN(gsql::StreamSchema schema,
                      registry_.GetSchema(node->name()));
  catalog_.PutStreamSchema(schema);
  nodes_.push_back(std::move(node));
  // Custom nodes read stream channels, not raw packets: worker stage.
  node_stages_.resize(nodes_.size(), NodeStage::kHfta);
  RegisterNewNodeTelemetry();
  return Status::Ok();
}

size_t Engine::PumpStage(NodeStage stage, size_t budget_per_node) {
  size_t processed = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i < node_stages_.size() && node_stages_[i] != stage) continue;
    processed += nodes_[i]->PollCounted(budget_per_node);
  }
  return processed;
}

size_t Engine::Pump(size_t budget_per_node) {
  if (threads_running_) {
    // Workers own the HFTA nodes; polling them here would add a second
    // consumer to their SPSC channels.
    return PumpStage(NodeStage::kLfta, budget_per_node);
  }
  size_t processed = 0;
  for (auto& node : nodes_) {
    processed += node->PollCounted(budget_per_node);
  }
  return processed;
}

void Engine::PumpUntilIdle() {
  while (Pump() > 0) {
  }
}

void Engine::FlushAll() {
  if (flushed_) return;  // idempotent: the engine is already sealed
  // Barrier: take the worker pool down first, then drain everything from
  // this thread — deterministic regardless of worker scheduling, because
  // channels hand over their remaining contents in FIFO order.
  StopThreads();
  PumpUntilIdle();
  // Flush upstream-to-downstream, pumping between rounds so flushed state
  // propagates through the chain.
  for (auto& node : nodes_) {
    node->Flush();
    PumpUntilIdle();
  }
  flushed_ = true;
}

Status Engine::StartThreads(size_t workers) {
  if (threads_running_) {
    return Status::FailedPrecondition("worker pool is already running");
  }
  GS_RETURN_IF_ERROR(CheckAcceptingInput("StartThreads"));
  if (workers == 0) {
    return Status::InvalidArgument("StartThreads needs at least one worker");
  }
  node_stages_.resize(nodes_.size(), NodeStage::kHfta);

  std::vector<rts::QueryNode*> hfta_nodes;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (node_stages_[i] == NodeStage::kHfta) {
      hfta_nodes.push_back(nodes_[i].get());
    }
  }
  stop_workers_.store(false, std::memory_order_relaxed);
  threads_running_ = true;
  if (hfta_nodes.empty()) return Status::Ok();  // everything is LFTA-stage

  const size_t pool = std::min(workers, hfta_nodes.size());
  for (size_t w = 0; w < pool; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->waker = std::make_shared<rts::ConsumerWaker>();
    // Slot w's park histogram persists across start/stop cycles (the
    // registry reader must outlive this pool) and is registered once.
    if (w >= worker_park_ns_.size()) {
      worker_park_ns_.push_back(std::make_unique<telemetry::Histogram>());
      telemetry_.RegisterHistogram("worker" + std::to_string(w),
                                   metric::kParkNs,
                                   worker_park_ns_.back().get());
    }
    worker->park_ns = worker_park_ns_[w].get();
    workers_.push_back(std::move(worker));
  }
  for (size_t i = 0; i < hfta_nodes.size(); ++i) {
    workers_[i % pool]->nodes.push_back(hfta_nodes[i]);
  }
  // Wire each worker-owned node's input channels to that worker's waker so
  // pushes (tuples and punctuations) un-park it. Done before the threads
  // start, so the writes are published by thread creation.
  for (const auto& worker : workers_) {
    for (rts::QueryNode* node : worker->nodes) {
      for (const rts::Subscription& channel : node->inputs()) {
        channel->SetWaker(worker->waker);
      }
    }
  }
  for (const auto& worker : workers_) {
    worker->thread = std::thread(&Engine::WorkerLoop, this, worker.get());
  }
  return Status::Ok();
}

void Engine::StopThreads() {
  if (!threads_running_) return;
  stop_workers_.store(true, std::memory_order_release);
  for (const auto& worker : workers_) worker->waker->Wake();
  for (const auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  workers_.clear();
  threads_running_ = false;
}

void Engine::WorkerLoop(Worker* worker) {
  // Spin briefly on idle before parking; a push into any owned channel
  // wakes the park, and the timeout bounds any lost-wakeup window.
  constexpr int kSpinRounds = 64;
  constexpr std::chrono::microseconds kParkTimeout{200};
  int idle_rounds = 0;
  while (!stop_workers_.load(std::memory_order_acquire)) {
    size_t processed = 0;
    for (rts::QueryNode* node : worker->nodes) {
      processed += node->PollCounted(options_.worker_poll_budget);
    }
    if (processed > 0) {
      idle_rounds = 0;
      continue;
    }
    if (++idle_rounds < kSpinRounds) {
      std::this_thread::yield();
      continue;
    }
    const int64_t park_start = telemetry::MonotonicNowNs();
    worker->waker->Park(kParkTimeout);
    worker->park_ns->Record(
        static_cast<uint64_t>(telemetry::MonotonicNowNs() - park_start));
  }
}

std::vector<Engine::NodeStats> Engine::GetNodeStats() const {
  std::vector<NodeStats> stats;
  stats.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    stats.push_back({node->name(), node->tuples_in(), node->tuples_out(),
                     node->eval_errors()});
  }
  return stats;
}

}  // namespace gigascope::core
