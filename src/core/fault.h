#ifndef GIGASCOPE_CORE_FAULT_H_
#define GIGASCOPE_CORE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace gigascope::core {

/// Deterministic fault-injection configuration for the multi-process
/// engine: one fault, armed at engine start, fired by the worker (abort /
/// stall) or the ring producer (torn) at an exactly reproducible point.
/// Driven by `gsrun --fault=SPEC` and by tests, so the recovery paths —
/// crash detection, heartbeat-stall detection, torn-slot skipping — are
/// exercised on every CI run rather than trusted.
///
/// Spec grammar (kind, then comma-separated key=value options):
///   abort:worker=W,after=N[,jitter=J,seed=S][,every=1]
///       Worker W SIGKILLs itself after processing N messages. With
///       jitter, N += seed-derived offset in [0, J) — deterministic for a
///       fixed seed, varied across seeds. Fires once per run by default
///       (the restarted incarnation survives); every=1 re-arms each
///       incarnation, which exhausts the restart budget.
///   stall:worker=W,after=N[,ms=D][,jitter=J,seed=S][,every=1]
///       Worker W stops heartbeating (but keeps its process alive) after
///       N messages, for D ms (0 = forever, until the supervisor kills
///       it). Exercises hung-worker detection as distinct from death.
///   torn:stream=NAME[,nth=K]
///       Corrupts the sequence stamp of the Kth slot (default 1st)
///       published into each subscriber ring of stream NAME, so the
///       consumer's validation path must detect and skip it.
struct FaultConfig {
  enum class Kind : uint8_t { kNone, kAbort, kStall, kTorn };
  Kind kind = Kind::kNone;
  /// Target worker index (abort/stall).
  size_t worker = 0;
  /// Fire once the worker's cumulative processed-message count reaches
  /// this (post-jitter value in `effective_after`).
  uint64_t after_msgs = 0;
  /// Deterministic spread added to after_msgs: seed-derived offset in
  /// [0, jitter). 0 disables.
  uint64_t jitter = 0;
  uint64_t seed = 0;
  /// Stall duration in wall ms; 0 stalls forever (supervisor kills it).
  uint64_t stall_ms = 0;
  /// Re-arm in every restarted incarnation (default: fire once per run).
  bool every_incarnation = false;
  /// Torn-slot target stream and 1-based slot-publication ordinal.
  std::string stream;
  uint64_t nth = 1;

  bool enabled() const { return kind != Kind::kNone; }

  /// after_msgs with the seeded jitter applied (splitmix64 over seed).
  uint64_t effective_after() const;
};

/// Parses the --fault spec grammar above.
Result<FaultConfig> ParseFaultSpec(std::string_view spec);

/// Renders a FaultConfig back to its spec form (diagnostics, EXPLAIN).
std::string FaultSpecToString(const FaultConfig& config);

/// The worker-side injector: a child process calls MaybeFire after each
/// pump round with its cumulative processed count; at the configured
/// point it either SIGKILLs itself (abort — indistinguishable from a real
/// crash, no atexit, no flush) or suppresses its heartbeat (stall).
///
/// `fired_latch` lives in shared memory (WorkerControl::fault_fired) so
/// "fire once per run" survives the restart: the new incarnation sees the
/// latch set and does not re-fire unless every_incarnation is set.
class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, size_t worker,
                std::atomic<uint32_t>* fired_latch);

  /// Checks the trigger; may not return (abort). Returns true while a
  /// stall is in force — the caller must skip its heartbeat for this
  /// round.
  bool MaybeFire(uint64_t processed_msgs);

  /// Whether a stall window is currently suppressing heartbeats.
  bool stalling() const { return stalling_; }

 private:
  FaultConfig config_;
  bool armed_ = false;
  bool stalling_ = false;
  int64_t stall_until_ns_ = 0;
  std::atomic<uint32_t>* fired_latch_;
};

}  // namespace gigascope::core

#endif  // GIGASCOPE_CORE_FAULT_H_
