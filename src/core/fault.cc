#include "core/fault.h"

#include <signal.h>
#include <unistd.h>

#include <cstdlib>

#include "telemetry/histogram.h"

namespace gigascope::core {

namespace {

/// splitmix64: the standard seed-expansion mixer — one multiply-xor chain,
/// fully deterministic, good enough to spread a jitter window.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Status ParseError(std::string_view spec, const std::string& why) {
  return Status::InvalidArgument("bad --fault spec '" + std::string(spec) +
                                 "': " + why);
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

uint64_t FaultConfig::effective_after() const {
  if (jitter == 0) return after_msgs;
  return after_msgs + SplitMix64(seed) % jitter;
}

Result<FaultConfig> ParseFaultSpec(std::string_view spec) {
  FaultConfig config;
  const size_t colon = spec.find(':');
  const std::string_view kind =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);
  if (kind == "abort") {
    config.kind = FaultConfig::Kind::kAbort;
  } else if (kind == "stall") {
    config.kind = FaultConfig::Kind::kStall;
  } else if (kind == "torn") {
    config.kind = FaultConfig::Kind::kTorn;
  } else {
    return ParseError(spec, "kind must be abort, stall, or torn");
  }
  std::string_view rest =
      colon == std::string_view::npos ? std::string_view{} : spec.substr(colon + 1);
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    std::string_view pair =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return ParseError(spec, "expected key=value, got '" + std::string(pair) +
                                  "'");
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    uint64_t number = 0;
    if (key == "stream") {
      config.stream = std::string(value);
      continue;
    }
    if (!ParseU64(value, &number)) {
      return ParseError(spec, "'" + std::string(key) +
                                  "' needs a non-negative integer, got '" +
                                  std::string(value) + "'");
    }
    if (key == "worker") {
      config.worker = static_cast<size_t>(number);
    } else if (key == "after") {
      config.after_msgs = number;
    } else if (key == "jitter") {
      config.jitter = number;
    } else if (key == "seed") {
      config.seed = number;
    } else if (key == "ms") {
      config.stall_ms = number;
    } else if (key == "nth") {
      config.nth = number == 0 ? 1 : number;
    } else if (key == "every") {
      config.every_incarnation = number != 0;
    } else {
      return ParseError(spec, "unknown key '" + std::string(key) + "'");
    }
  }
  if (config.kind == FaultConfig::Kind::kTorn && config.stream.empty()) {
    return ParseError(spec, "torn needs stream=NAME");
  }
  return config;
}

std::string FaultSpecToString(const FaultConfig& config) {
  switch (config.kind) {
    case FaultConfig::Kind::kNone:
      return "none";
    case FaultConfig::Kind::kAbort:
      return "abort:worker=" + std::to_string(config.worker) +
             ",after=" + std::to_string(config.effective_after());
    case FaultConfig::Kind::kStall:
      return "stall:worker=" + std::to_string(config.worker) +
             ",after=" + std::to_string(config.effective_after()) +
             ",ms=" + std::to_string(config.stall_ms);
    case FaultConfig::Kind::kTorn:
      return "torn:stream=" + config.stream +
             ",nth=" + std::to_string(config.nth);
  }
  return "none";
}

FaultInjector::FaultInjector(const FaultConfig& config, size_t worker,
                             std::atomic<uint32_t>* fired_latch)
    : config_(config), fired_latch_(fired_latch) {
  armed_ = config_.enabled() && config_.kind != FaultConfig::Kind::kTorn &&
           config_.worker == worker;
  if (armed_ && !config_.every_incarnation && fired_latch_ != nullptr &&
      fired_latch_->load(std::memory_order_relaxed) != 0) {
    armed_ = false;  // fired in a previous incarnation of this worker
  }
}

bool FaultInjector::MaybeFire(uint64_t processed_msgs) {
  if (stalling_) {
    if (config_.stall_ms == 0 ||
        telemetry::MonotonicNowNs() < stall_until_ns_) {
      return true;  // keep suppressing the heartbeat
    }
    stalling_ = false;
    return false;
  }
  if (!armed_ || processed_msgs < config_.effective_after()) return false;
  armed_ = false;
  if (fired_latch_ != nullptr) {
    fired_latch_->store(1, std::memory_order_relaxed);
  }
  if (config_.kind == FaultConfig::Kind::kAbort) {
    // SIGKILL, not exit(): no atexit handlers, no flush, no unwinding —
    // indistinguishable from a real crash to the supervisor.
    kill(getpid(), SIGKILL);
    _exit(127);  // unreachable
  }
  stalling_ = true;
  if (config_.stall_ms > 0) {
    stall_until_ns_ = telemetry::MonotonicNowNs() +
                      static_cast<int64_t>(config_.stall_ms) * 1000 * 1000;
  }
  return true;
}

}  // namespace gigascope::core
