#ifndef GIGASCOPE_CORE_SUPERVISOR_H_
#define GIGASCOPE_CORE_SUPERVISOR_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "rts/shm.h"

namespace gigascope::core {

/// Supervision knobs for the multi-process HFTA mode.
struct SupervisorOptions {
  /// Monitor tick period and expected heartbeat cadence, wall-clock ms.
  uint64_t heartbeat_period_ms = 20;
  /// Consecutive stale monitor ticks before a live-but-silent worker is
  /// declared hung and SIGKILLed (then restarted like a crash).
  uint32_t miss_threshold = 5;
  /// Restarts allowed per worker before it is declared degraded and its
  /// nodes are adopted by the parent. 0 = never restart.
  uint32_t restart_budget = 3;
  /// Exponential-backoff window before each restart: initial delay, then
  /// x2 per consecutive restart, capped at backoff_max_ms.
  uint64_t backoff_initial_ms = 10;
  uint64_t backoff_max_ms = 1000;
  /// How long SendCommand waits for a worker's ack before giving up (the
  /// worker is usually declared dead/hung by the monitor well before this
  /// expires — the wait also aborts as soon as the worker degrades).
  uint64_t command_timeout_ms = 10000;
};

/// Parent -> child requests carried through the shm mailbox.
enum class WorkerCommand : uint32_t {
  kNone = 0,
  /// Flush the worker-local node at index `arg` of the worker's group and
  /// drain; ack_value = messages processed while draining.
  kFlushNode = 1,
  /// Pump the worker's nodes until idle; ack_value = messages processed.
  kDrain = 2,
  /// Acknowledge and _exit(0).
  kExit = 3,
};

/// One worker's shared-memory control block, mapped before any fork so
/// parent and every child incarnation address the same cache lines.
///
/// Single-writer disciplines: `heartbeat`, `msgs_processed`, `fault_fired`,
/// `ack_seq`, and `ack_value` are written only by the (one live) child;
/// `generation`, `cmd_seq`, `cmd_code`, and `cmd_arg` only by the parent.
/// Mailbox protocol: the parent writes cmd_code/cmd_arg then publishes by
/// storing cmd_seq (release); the child observes cmd_seq != ack_seq,
/// executes, writes ack_value, and publishes by storing ack_seq = cmd_seq
/// (release). A command posted to a worker that dies before acking is
/// re-observed by the restarted incarnation — or failed over by the parent
/// once the worker degrades.
struct WorkerControl {
  alignas(64) std::atomic<uint64_t> heartbeat{0};
  std::atomic<uint64_t> msgs_processed{0};
  std::atomic<uint32_t> generation{0};
  /// FaultInjector's fire-once-per-run latch (survives restarts).
  std::atomic<uint32_t> fault_fired{0};
  alignas(64) std::atomic<uint64_t> cmd_seq{0};
  std::atomic<uint32_t> cmd_code{0};
  std::atomic<uint64_t> cmd_arg{0};
  alignas(64) std::atomic<uint64_t> ack_seq{0};
  std::atomic<uint64_t> ack_value{0};
};

/// Forks and babysits the HFTA worker processes (the paper's §4 model: each
/// HFTA is "an application process" fed through shared memory). Liveness is
/// watched two ways — waitpid for death, a shm heartbeat counter for hangs —
/// and a failed worker is re-forked under exponential backoff until its
/// restart budget runs out, at which point it is declared degraded and the
/// engine adopts its nodes in-process.
///
/// Because the parent never runs HFTA operator code, a re-fork inherits the
/// operators' pristine copy-on-write state: restart *is* recovery, and the
/// restarted incarnation resynchronizes its input rings at the next
/// punctuation boundary (RingChannel::BeginResync).
class Supervisor {
 public:
  enum class WorkerState : uint32_t {
    kStopped = 0,   // never started, or StopAll completed
    kRunning,       // child process alive (as far as the monitor knows)
    kBackoff,       // died; restart scheduled after the backoff window
    kDegraded,      // restart budget exhausted (or died while sealing)
  };

  /// Runs the worker's pump loop inside the child; must not return state
  /// through memory (the child is a separate process) and must not throw.
  /// The child _exits(0) when this returns.
  using ChildMain = std::function<void(size_t worker, uint32_t generation)>;

  Supervisor(const SupervisorOptions& options, size_t workers,
             ChildMain child_main);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Forks every worker and starts the monitor thread. Call once, from the
  /// thread that owns engine setup, before any data flows.
  Status Start();

  /// Enters the drain phase: no further restarts. Workers already waiting
  /// in backoff degrade immediately; a worker that dies after this call
  /// degrades instead of restarting, so FlushAll never waits on a respawn.
  void BeginSeal();

  /// Posts a command and waits for the ack. Returns false — without
  /// blocking for the full timeout — when the worker is (or becomes)
  /// degraded or stopped, so the caller can fail over to in-process
  /// execution of that worker's nodes.
  bool SendCommand(size_t worker, WorkerCommand command, uint64_t arg,
                   uint64_t* ack_value);

  /// Stops everything: best-effort kExit commands, SIGKILL for stragglers,
  /// reaps all children, joins the monitor thread. Idempotent; degraded
  /// workers stay marked degraded for introspection.
  void StopAll();

  size_t workers() const { return slots_.size(); }
  WorkerState state(size_t worker) const {
    return slots_[worker]->state.load(std::memory_order_acquire);
  }
  WorkerControl* control(size_t worker) const { return &controls_[worker]; }
  pid_t pid(size_t worker) const {
    return slots_[worker]->pid.load(std::memory_order_relaxed);
  }

  uint64_t restarts() const {
    return restarts_.load(std::memory_order_relaxed);
  }
  /// Restarts consumed by one worker (for ANALYZE process placement).
  uint32_t restarts_used(size_t worker) const {
    return slots_[worker]->restarts_used.load(std::memory_order_relaxed);
  }
  uint64_t heartbeat_misses() const {
    return heartbeat_misses_.load(std::memory_order_relaxed);
  }
  uint64_t degraded_count() const {
    return degraded_count_.load(std::memory_order_relaxed);
  }

  // -- Child-side mailbox helpers -------------------------------------------

  /// Child side: the pending command, or kNone. On a command, *arg and
  /// *seq are filled; the child must Ack(seq) exactly once after executing.
  static WorkerCommand PendingCommand(WorkerControl* control, uint64_t* arg,
                                      uint64_t* seq);
  static void Ack(WorkerControl* control, uint64_t seq, uint64_t value);

 private:
  struct Slot {
    std::atomic<pid_t> pid{-1};
    std::atomic<WorkerState> state{WorkerState::kStopped};
    // Monitor-thread bookkeeping (mutated under mutex_; restarts_used is
    // atomic so the ANALYZE path can read it without taking the monitor's
    // mutex).
    std::atomic<uint32_t> restarts_used{0};
    uint64_t backoff_ms = 0;
    int64_t restart_at_ns = 0;
    uint64_t last_beat = 0;
    uint32_t stale_ticks = 0;
  };

  /// Forks worker `w` (mutex_ held). The child never returns.
  void SpawnLocked(size_t w);
  /// Books one worker death: schedules a backoff restart, or degrades it
  /// when the budget is spent / the supervisor is sealing (mutex_ held).
  void HandleDeathLocked(size_t w);
  void MonitorLoop();

  SupervisorOptions options_;
  ChildMain child_main_;
  std::unique_ptr<rts::ShmSegment> shm_;
  WorkerControl* controls_ = nullptr;
  std::vector<std::unique_ptr<Slot>> slots_;

  std::mutex mutex_;  // guards state transitions + spawn/reap
  std::thread monitor_;
  std::atomic<bool> stop_monitor_{false};
  std::atomic<bool> sealing_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<uint64_t> restarts_{0};
  std::atomic<uint64_t> heartbeat_misses_{0};
  std::atomic<uint64_t> degraded_count_{0};
};

}  // namespace gigascope::core

#endif  // GIGASCOPE_CORE_SUPERVISOR_H_
