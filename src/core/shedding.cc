#include "core/shedding.h"

#include "telemetry/metric_names.h"

namespace gigascope::core {

namespace metric = telemetry::metric;

OverloadController::OverloadController(const ShedConfig& config,
                                       rts::ShedState* state)
    : config_(config), state_(state) {
  Actuate(0);
}

bool OverloadController::OverThreshold(const PressureSignals& signals,
                                       double scale) const {
  if (signals.max_ring_occupancy > config_.ring_occupancy * scale) {
    return true;
  }
  // Drops are per-check deltas, not a level: any fresh loss is pressure.
  // Under the recover scale a calm check simply requires zero new drops.
  uint64_t drop_threshold =
      scale >= 1.0 ? config_.drops_per_check : uint64_t{1};
  if (config_.drops_per_check > 0 && new_drops_ >= drop_threshold) {
    return true;
  }
  if (static_cast<double>(signals.max_punct_lag) >
      static_cast<double>(config_.punct_lag) * scale) {
    return true;
  }
  if (signals.max_lfta_occupancy > config_.lfta_occupancy * scale) {
    return true;
  }
  return false;
}

uint32_t OverloadController::Check(const PressureSignals& signals) {
  ++checks_;
  new_drops_ = signals.total_drops - last_drops_;
  last_drops_ = signals.total_drops;

  uint32_t level = state_->Level();
  if (OverThreshold(signals, 1.0)) {
    calm_streak_ = 0;
    if (level < config_.max_level) Actuate(level + 1);
  } else if (!OverThreshold(signals, config_.recover_fraction)) {
    // Step down one rung only after hold_checks consecutive calm reads, so
    // a burst that briefly subsides does not oscillate the ladder.
    if (++calm_streak_ >= config_.hold_checks && level > 0) {
      Actuate(level - 1);
      calm_streak_ = 0;
    }
  } else {
    // Between the recover band and the escalate threshold: hold.
    calm_streak_ = 0;
  }
  return state_->Level();
}

void OverloadController::Actuate(uint32_t level) {
  state_->level.store(level, std::memory_order_relaxed);
  state_->sample_k.store(level >= 1 ? config_.sample_k : 1,
                         std::memory_order_relaxed);
  state_->epoch_coarsen.store(level >= 2 ? config_.epoch_coarsen : 1,
                              std::memory_order_relaxed);
  state_->table_cap_pct.store(level >= 3 ? config_.table_cap_pct : 100,
                              std::memory_order_relaxed);
}

uint64_t OverloadController::shed_rate_pct() const {
  uint32_t k = state_->SampleK();
  if (k <= 1) return 0;
  return (static_cast<uint64_t>(k) - 1) * 100 / k;
}

void OverloadController::RegisterTelemetry(telemetry::Registry* metrics,
                                           const std::string& entity) const {
  metrics->RegisterReader(entity, metric::kShedLevel, [this] {
    return static_cast<uint64_t>(state_->Level());
  });
  metrics->RegisterReader(entity, metric::kShedRate,
                          [this] { return shed_rate_pct(); });
  metrics->Register(entity, metric::kShedChecks, &checks_);
}

}  // namespace gigascope::core
