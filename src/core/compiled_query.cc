#include "core/compiled_query.h"

#include "ops/aggregate.h"
#include "ops/join.h"
#include "ops/lfta_agg.h"
#include "ops/merge.h"
#include "ops/select_project.h"
#include "plan/ordering.h"

namespace gigascope::core {

namespace {

using expr::CompiledExpr;
using expr::IrPtr;
using plan::PlanKind;
using plan::PlanPtr;

/// The single input field an expression depends on, when its output order
/// was imputed as increasing-like — used for punctuation mapping.
int PunctuationSource(const IrPtr& ir, const gsql::StreamSchema& input,
                      const gsql::OrderSpec& output_order) {
  if (!output_order.IsIncreasingLike()) return -1;
  std::vector<std::pair<size_t, size_t>> refs;
  expr::CollectFieldRefs(ir, &refs);
  if (refs.size() != 1 || refs[0].first != 0) return -1;
  (void)input;
  return static_cast<int>(refs[0].second);
}

/// Resolves the stream name a plan child is read from. For operators the
/// name is synthesized from the parent's output name and child position.
Result<std::string> ChildStreamName(const PlanPtr& child,
                                    const std::string& parent_name,
                                    size_t index,
                                    InstantiationContext* ctx) {
  if (child->kind == PlanKind::kSource) {
    std::string name =
        child->source_is_protocol
            ? ProtocolStreamName(child->interface_name, child->source_stream)
            : child->source_stream;
    if (!ctx->registry->HasStream(name)) {
      return Status::NotFound(
          "query reads stream '" + name +
          "' which is not registered (did an upstream query register it?)");
    }
    return name;
  }
  return parent_name + "#" + std::to_string(index);
}

Result<std::optional<CompiledExpr>> CompileOptional(
    const IrPtr& ir, const std::vector<expr::Value>& param_values) {
  if (ir == nullptr) return std::optional<CompiledExpr>();
  GS_ASSIGN_OR_RETURN(CompiledExpr compiled,
                      expr::Compile(ir, param_values));
  return std::optional<CompiledExpr>(std::move(compiled));
}

uint64_t BandOf(const gsql::OrderSpec& order) {
  return order.kind == gsql::OrderKind::kBandedIncreasing ? order.band : 0;
}

}  // namespace

std::string ProtocolStreamName(const std::string& interface_name,
                               const std::string& protocol) {
  return interface_name + "." + protocol;
}

Status InstantiatePlan(const plan::PlanPtr& node,
                       const std::string& output_name,
                       InstantiationContext* ctx) {
  if (node == nullptr) return Status::Internal("null plan node");
  if (node->kind == PlanKind::kSource) {
    return Status::Internal(
        "a bare Source plan has no operator to instantiate");
  }

  // Instantiate operator children and determine input stream names.
  std::vector<std::string> input_names;
  for (size_t i = 0; i < node->children.size(); ++i) {
    const PlanPtr& child = node->children[i];
    GS_ASSIGN_OR_RETURN(std::string child_name,
                        ChildStreamName(child, output_name, i, ctx));
    if (child->kind != PlanKind::kSource) {
      GS_RETURN_IF_ERROR(InstantiatePlan(child, child_name, ctx));
    }
    input_names.push_back(std::move(child_name));
  }

  // Declare this operator's output stream before wiring the node, so that
  // Publish() has a destination and downstream operators can subscribe.
  {
    gsql::StreamSchema named(output_name, gsql::StreamKind::kStream,
                             node->output_schema.fields());
    GS_RETURN_IF_ERROR(ctx->registry->DeclareStream(named));
  }

  switch (node->kind) {
    case PlanKind::kSelectProject: {
      ops::SelectProjectNode::Spec spec;
      spec.name = output_name;
      spec.output_batch = ctx->output_batch;
      GS_ASSIGN_OR_RETURN(spec.input_schema,
                          ctx->registry->GetSchema(input_names[0]));
      spec.output_schema = node->output_schema;
      GS_ASSIGN_OR_RETURN(spec.predicate,
                          CompileOptional(node->predicate,
                                          ctx->param_values));
      for (size_t i = 0; i < node->projections.size(); ++i) {
        GS_ASSIGN_OR_RETURN(CompiledExpr compiled,
                            expr::Compile(node->projections[i],
                                          ctx->param_values));
        spec.projections.push_back(std::move(compiled));
        spec.punctuation_source.push_back(PunctuationSource(
            node->projections[i], spec.input_schema,
            node->output_schema.field(i).order));
      }
      GS_ASSIGN_OR_RETURN(rts::Subscription input,
                          ctx->registry->Subscribe(input_names[0],
                                                   ctx->channel_capacity,
                                                   ctx->parent_local));
      ctx->nodes->push_back(std::make_unique<ops::SelectProjectNode>(
          std::move(spec), std::move(input), ctx->registry, ctx->params));
      return Status::Ok();
    }

    case PlanKind::kAggregate: {
      ops::OrderedAggregateNode::Spec spec;
      spec.name = output_name;
      spec.output_batch = ctx->output_batch;
      GS_ASSIGN_OR_RETURN(spec.input_schema,
                          ctx->registry->GetSchema(input_names[0]));
      spec.output_schema = node->output_schema;
      // The aggregate's output schema is unnamed inside the plan; name it.
      spec.output_schema = gsql::StreamSchema(
          output_name, gsql::StreamKind::kStream,
          node->output_schema.fields());
      spec.ordered_key = node->ordered_key;
      spec.ordered_key_band = node->ordered_key_band;
      for (size_t k = 0; k < node->group_keys.size(); ++k) {
        GS_ASSIGN_OR_RETURN(CompiledExpr compiled,
                            expr::Compile(node->group_keys[k],
                                          ctx->param_values));
        spec.keys.push_back(std::move(compiled));
        spec.key_punctuation_source.push_back(PunctuationSource(
            node->group_keys[k], spec.input_schema,
            plan::ImputeExprOrder(node->group_keys[k], spec.input_schema)));
      }
      spec.agg_specs = node->aggregates;
      for (const expr::AggregateSpec& agg : node->aggregates) {
        if (agg.arg == nullptr) {
          spec.agg_args.emplace_back();
        } else {
          GS_ASSIGN_OR_RETURN(CompiledExpr compiled,
                              expr::Compile(agg.arg, ctx->param_values));
          spec.agg_args.emplace_back(std::move(compiled));
        }
      }
      GS_ASSIGN_OR_RETURN(rts::Subscription input,
                          ctx->registry->Subscribe(input_names[0],
                                                   ctx->channel_capacity,
                                                   ctx->parent_local));
      if (ctx->use_lfta_table) {
        ctx->nodes->push_back(std::make_unique<ops::LftaAggregateNode>(
            std::move(spec), ctx->lfta_hash_log2, std::move(input),
            ctx->registry, ctx->params, ctx->shed));
      } else {
        ctx->nodes->push_back(std::make_unique<ops::OrderedAggregateNode>(
            std::move(spec), std::move(input), ctx->registry, ctx->params));
      }
      return Status::Ok();
    }

    case PlanKind::kJoin: {
      ops::WindowJoinNode::Spec spec;
      spec.name = output_name;
      spec.output_batch = ctx->output_batch;
      GS_ASSIGN_OR_RETURN(spec.left_schema,
                          ctx->registry->GetSchema(input_names[0]));
      GS_ASSIGN_OR_RETURN(spec.right_schema,
                          ctx->registry->GetSchema(input_names[1]));
      spec.output_schema = gsql::StreamSchema(
          output_name, gsql::StreamKind::kStream,
          node->output_schema.fields());
      GS_ASSIGN_OR_RETURN(spec.predicate,
                          CompileOptional(node->join_predicate,
                                          ctx->param_values));
      spec.left_field = node->left_window_field;
      spec.right_field = node->right_window_field;
      spec.lo = node->window_lo;
      spec.hi = node->window_hi;
      spec.order_preserving = node->join_order_preserving;
      spec.left_band =
          BandOf(spec.left_schema.field(spec.left_field).order);
      spec.right_band =
          BandOf(spec.right_schema.field(spec.right_field).order);
      GS_ASSIGN_OR_RETURN(rts::Subscription left,
                          ctx->registry->Subscribe(input_names[0],
                                                   ctx->channel_capacity,
                                                   ctx->parent_local));
      GS_ASSIGN_OR_RETURN(rts::Subscription right,
                          ctx->registry->Subscribe(input_names[1],
                                                   ctx->channel_capacity,
                                                   ctx->parent_local));
      ctx->nodes->push_back(std::make_unique<ops::WindowJoinNode>(
          std::move(spec), std::move(left), std::move(right), ctx->registry,
          ctx->params));
      return Status::Ok();
    }

    case PlanKind::kMerge: {
      ops::MergeNode::Spec spec;
      spec.name = output_name;
      spec.output_batch = ctx->output_batch;
      spec.schema = gsql::StreamSchema(output_name, gsql::StreamKind::kStream,
                                       node->output_schema.fields());
      spec.merge_field = node->merge_field;
      spec.band = BandOf(node->output_schema.field(node->merge_field).order);
      std::vector<rts::Subscription> inputs;
      for (const std::string& input_name : input_names) {
        GS_ASSIGN_OR_RETURN(rts::Subscription input,
                            ctx->registry->Subscribe(input_name,
                                                     ctx->channel_capacity,
                                                     ctx->parent_local));
        inputs.push_back(std::move(input));
      }
      ctx->nodes->push_back(std::make_unique<ops::MergeNode>(
          std::move(spec), std::move(inputs), ctx->registry));
      return Status::Ok();
    }

    case PlanKind::kSource:
      break;
  }
  return Status::Internal("unhandled plan node kind");
}

}  // namespace gigascope::core
