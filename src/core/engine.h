#ifndef GIGASCOPE_CORE_ENGINE_H_
#define GIGASCOPE_CORE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.h"
#include "core/shedding.h"
#include "core/supervisor.h"
#include "gsql/catalog.h"
#include "jit/engine.h"
#include "net/packet.h"
#include "plan/explain.h"
#include "plan/splitter.h"
#include "rts/node.h"
#include "rts/registry.h"
#include "rts/shed_state.h"
#include "rts/tuple.h"
#include "telemetry/histogram.h"
#include "telemetry/registry.h"
#include "telemetry/stats_source.h"
#include "telemetry/tracer.h"
#include "udf/registry.h"

namespace gigascope::ops {
class LftaAggregateNode;
}  // namespace gigascope::ops

namespace gigascope::core {

/// A subscriber-side decoded view of a stream.
class TupleSubscription {
 public:
  TupleSubscription(rts::Subscription channel, gsql::StreamSchema schema);

  /// Next decoded tuple, skipping punctuations; nullopt when drained.
  std::optional<rts::Row> NextRow();

  /// Number of messages currently queued.
  size_t pending() const { return channel_->size(); }
  uint64_t dropped() const { return channel_->dropped(); }

  const gsql::StreamSchema& schema() const { return codec_.schema(); }

 private:
  rts::Subscription channel_;
  rts::TupleCodec codec_;
};

/// Multi-process HFTA execution (the paper's §4 model: HFTAs are
/// application processes fed through shared memory). Enabled at engine
/// construction so every inter-node ring created while queries are added
/// is shm-backed and fork-shareable.
struct ProcessOptions {
  bool enabled = false;
  /// Shm ring geometry: slot count per ring (subscription capacities are
  /// clamped to this) and payload bytes per slot (larger batches split
  /// across slots; a single message over this limit is dropped and
  /// counted).
  size_t shm_max_slots = 32768;
  size_t shm_slot_bytes = 16 * 1024;
  /// Shm metrics arena capacity, in metric slots (16 bytes each). Worker
  /// node counters and histograms bind into the arena before the fork, so
  /// the parent's registry folds live child-side values (monotone across
  /// restarts) instead of reading its own stale copy-on-write copies.
  /// 0 disables the arena: worker metrics degrade to parent-stale values.
  size_t metrics_arena_slots = 16384;
  /// Heartbeat cadence, restart budget/backoff, command timeouts.
  SupervisorOptions supervisor;
};

/// Engine construction knobs.
struct EngineOptions {
  /// UDF registry (defaults to the built-in function library).
  const expr::FunctionResolver* functions = nullptr;
  /// Capacity of inter-node channels, in ring slots. Each slot carries one
  /// StreamBatch (up to batch_max_size messages), so the message capacity
  /// is channel_capacity * batch_max_size when sources batch fully.
  size_t channel_capacity = 8192;
  /// log2 of the LFTA direct-mapped hash table slot count.
  int lfta_hash_log2 = 12;
  /// Packet sources emit a punctuation every this many packets.
  size_t punctuation_interval = 256;
  /// Per-node poll budget for worker threads in the threaded pump mode.
  size_t worker_poll_budget = 1024;
  /// Batched data plane: source tuples accumulate into a StreamBatch that
  /// is published as one ring message once it holds this many tuples.
  /// Operators reuse the same bound for their output batches. 1 restores
  /// per-tuple message flow (each message rides alone).
  size_t batch_max_size = 64;
  /// Maximum sim-time an open source batch may age before a newly injected
  /// packet forces a flush: bounds the latency a tuple can sit unflushed
  /// while the stream is slow. 0 disables the age check (batches flush on
  /// size, punctuations, and every Pump).
  SimTime batch_max_delay = 0;
  /// Period, in sim-time nanoseconds, of the built-in `gs_stats` telemetry
  /// stream: the engine snapshots its metric registry and emits one tuple
  /// per counter whenever injected time (packet timestamps, heartbeats)
  /// advances past the period. 0 disables periodic emission; the counters
  /// themselves are always maintained (one relaxed store on the hot path),
  /// and EmitStatsSnapshot still works.
  SimTime stats_period = 0;
  /// Sampled per-tuple tracing: tag roughly 1 in `trace_sample` injected
  /// packets and follow them through LFTA pre-aggregation, the rings, and
  /// the HFTA operators (gsrun --trace-sample). 0 disables the tracer
  /// entirely — no clock reads, no per-message work beyond a null check.
  /// The resulting trace exports as Chrome trace-event JSON
  /// (Engine::tracer()->WriteJson), loadable in Perfetto.
  size_t trace_sample = 0;
  /// Seed of the tracer's sampling RNG; same seed + same injection
  /// sequence = same packets traced.
  uint64_t trace_seed = 42;
  /// Closed-loop overload management (§3 graceful degradation): with
  /// shed.enabled the engine periodically evaluates its own telemetry
  /// (ring occupancy, drops, punctuation lag, LFTA table occupancy)
  /// against shed's thresholds and walks a shedding ladder — L1 1-in-k
  /// source sampling with unbiased COUNT/SUM scaling, L2 coarser LFTA
  /// epochs, L3 bounded LFTA occupancy — stepping back down with
  /// hysteresis once pressure subsides.
  ShedConfig shed;
  /// Native compiled-query tier (DESIGN.md §15): transpile each query's
  /// compiled expressions to C++, build a shared object with the system
  /// toolchain, and hot-swap the kernels into the operators. Off by
  /// default; the bytecode VM is always the correct fallback. Overridable
  /// per process with GS_JIT_FORCE=off|sync|async and GS_JIT_CACHE_DIR.
  jit::JitOptions jit;
  /// Supervised multi-process HFTA mode (StartProcesses).
  ProcessOptions process;
  /// One deterministic injected fault, armed when worker processes start
  /// (gsrun --fault=SPEC; see core/fault.h for the grammar). Testing only.
  FaultConfig fault;
};

/// Precompiled packet-interpretation plan for one schema: which built-in
/// extractor feeds each field, resolved by name once at source creation
/// instead of by string comparison per packet, plus a materialization gate
/// per field. The variable-length fields (payload, ipPayload) copy packet
/// bytes on every interpretation; the engine leaves them unmaterialized
/// until a consumer that reads them registers — the same
/// haul-only-what-queries-need idea as the NIC snap length (§4), applied
/// at the interpretation layer.
struct InterpretPlan {
  enum class Extract : uint8_t {
    kTime, kTimestamp, kLen,
    kSrcIp, kDestIp, kSrcPort, kDestPort,
    kProtocol, kIpVersion, kTcpFlags, kTcpSeq,
    kIpId, kFragOffset, kMoreFrags,
    kPayload, kIpPayload,
    kDefault,
  };
  std::vector<Extract> fields;
  std::vector<gsql::DataType> types;
  /// Unwanted fields interpret as their type default. Only kPayload and
  /// kIpPayload are ever gated off; fixed-width fields are always cheap
  /// enough to materialize.
  std::vector<bool> wanted;
};

/// Resolves `schema`'s field names against the built-in interpretation
/// library (§2.2). All fields start wanted.
InterpretPlan BuildInterpretPlan(const gsql::StreamSchema& schema);

/// Metadata about a compiled, running query.
struct QueryInfo {
  std::string name;
  std::string lfta_name;         // mangled LFTA stream name (if split)
  bool has_lfta = false;
  bool has_hfta = false;
  bool split_aggregation = false;
  bool unbounded_aggregation = false;
  bool has_nic_program = false;
  bpf::Program nic_program;      // for the capture layer to load
  uint32_t snap_len = 0;
  std::string plan_text;         // human-readable plan dump
};

/// The Gigascope engine: catalog + GSQL compiler + stream manager + the
/// running query network.
///
/// Usage:
///   Engine engine;
///   engine.AddInterface("eth0");
///   engine.AddQuery("DEFINE { query_name tcpdest; } SELECT destIP, "
///                   "destPort, time FROM eth0.PKT WHERE protocol = 6");
///   auto sub = engine.Subscribe("tcpdest");
///   engine.InjectPacket("eth0", packet);
///   engine.PumpUntilIdle();
///   while (auto row = sub->NextRow()) { ... }
///
/// The engine is single-threaded by default: InjectPacket enqueues work and
/// Pump drives every operator, which makes runs deterministic.
///
/// StartThreads switches to the ThreadedEngine pump mode, mirroring the
/// paper's §4 process split: source interpretation and LFTA nodes stay on
/// the caller's inject thread (the paper links LFTAs into the RTS next to
/// the capture loop) while HFTA nodes (join, merge, final aggregation) run
/// on a worker pool connected through the lock-free SPSC ring channels.
/// Each node is owned by exactly one worker, so every channel keeps a
/// single producer thread and a single consumer thread. FlushAll is the
/// drain barrier: it stops the workers, drains every channel
/// deterministically on the calling thread, and seals the engine — after
/// FlushAll, injection calls return FailedPrecondition and further
/// FlushAll calls are no-ops.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  // -- Setup ---------------------------------------------------------------

  /// Declares a capture interface (e.g. "eth0"). The first interface added
  /// becomes the default for unqualified Protocol references.
  void AddInterface(const std::string& name);

  /// Executes DDL statements (CREATE PROTOCOL / CREATE STREAM).
  Status ExecuteDdl(std::string_view ddl);

  /// Declares an external stream that the caller will feed with InjectRow —
  /// the paper's "users can write their own query nodes" API.
  Status DeclareStream(const gsql::StreamSchema& schema);

  const gsql::Catalog& catalog() const { return catalog_; }

  // -- Queries ---------------------------------------------------------------

  /// Compiles and instantiates one GSQL query (SELECT or MERGE). Parameters
  /// declared in the DEFINE block take `params` values (or their defaults).
  Result<QueryInfo> AddQuery(
      std::string_view gsql_text,
      const std::map<std::string, expr::Value>& params = {});

  /// Changes a query parameter on the fly (§3). Takes effect on the next
  /// evaluated tuple. Pass-by-handle parameters cannot be changed (their
  /// handles were built at instantiation).
  Status SetParam(const std::string& query_name,
                  const std::string& param_name, expr::Value value);

  const std::vector<QueryInfo>& queries() const { return query_infos_; }

  // -- Subscriptions -----------------------------------------------------------

  /// Subscribes to any registered stream (query outputs, LFTA streams with
  /// their mangled names, raw protocol streams).
  Result<std::unique_ptr<TupleSubscription>> Subscribe(
      const std::string& stream_name, size_t capacity = 8192);

  // -- Data input -----------------------------------------------------------

  /// Feeds one captured packet to all Protocols bound to `interface_name`.
  Status InjectPacket(const std::string& interface_name,
                      const net::Packet& packet);

  /// Injects a time-only heartbeat: a punctuation advancing the ordered
  /// time attributes of every protocol stream on the interface without any
  /// tuple (§3's ordering-update tokens for slow streams).
  Status InjectHeartbeat(const std::string& interface_name, SimTime now);

  /// Feeds one tuple into a caller-declared stream.
  Status InjectRow(const std::string& stream_name, const rts::Row& row);

  /// Injects a punctuation bound on one field of a caller-declared stream.
  Status InjectPunctuation(const std::string& stream_name, size_t field,
                           const expr::Value& bound);

  /// Forces one telemetry snapshot onto the `gs_stats` stream, stamped
  /// `now` (clamped non-decreasing). An injection API like InjectPacket:
  /// call from the inject thread only. With options.stats_period > 0
  /// snapshots also happen automatically as injected time advances.
  Status EmitStatsSnapshot(SimTime now);

  /// Registers a user-written query node (§3: "users can write their own
  /// query nodes to implement special operators by following this API",
  /// e.g. the IP defragmentation operator in ops/defrag.h). The node must
  /// already have declared its output stream in registry(); it is pumped
  /// together with compiled query nodes.
  Status AddNode(std::unique_ptr<rts::QueryNode> node);

  // -- Execution ---------------------------------------------------------------

  /// Runs one round over the operator nodes; returns messages processed.
  /// In threaded mode only LFTA/source-stage nodes are pumped — HFTA
  /// nodes belong to their workers (single-consumer rule).
  size_t Pump(size_t budget_per_node = 1024);

  /// Pumps until no node makes progress (threaded mode: LFTA stage only).
  void PumpUntilIdle();

  /// End-of-stream barrier: stops workers if threaded, drains every
  /// channel, flushes buffered operator state (open groups, merge buffers)
  /// downstream, and seals the engine. Idempotent; after it returns,
  /// injection calls fail with FailedPrecondition.
  void FlushAll();

  // -- Threaded pump mode ------------------------------------------------------

  /// Starts the worker pool (ThreadedEngine pump mode). Call after all
  /// queries, custom nodes, and subscriptions are set up: while workers
  /// run, AddQuery/AddNode/Subscribe/DeclareStream/ExecuteDdl/SetParam
  /// return FailedPrecondition (they would mutate structures the workers
  /// read lock-free). HFTA nodes are partitioned round-robin over
  /// min(workers, hfta-node-count) threads; idle workers park and are
  /// woken by pushes into their nodes' input channels.
  Status StartThreads(size_t workers);

  /// Stops and joins the worker pool. Undrained channel contents remain
  /// and can be pumped single-threaded afterwards (FlushAll does this).
  void StopThreads();

  bool threads_running() const { return threads_running_; }

  // -- Multi-process pump mode -------------------------------------------------

  /// Starts supervised HFTA worker processes (requires
  /// EngineOptions::process.enabled at construction, so inter-node rings
  /// are shm-backed). Like StartThreads, HFTA nodes are partitioned
  /// round-robin over min(workers, hfta-node-count) forked processes;
  /// LFTA-stage nodes stay on the inject thread. Each worker heartbeats
  /// through shared memory; the supervisor restarts crashed or hung
  /// workers under exponential backoff, and a worker that exhausts its
  /// restart budget degrades — the parent adopts its nodes in-process,
  /// resynchronizing their inputs at the next punctuation boundary.
  Status StartProcesses(size_t workers);

  /// Kills the worker processes without draining (FlushAll does both, in
  /// order). Their in-flight operator state is lost; every group is
  /// adopted in-process with a resync so later pumping stays consistent.
  void StopProcesses();

  bool processes_running() const { return processes_running_; }

  /// The process supervisor, or null unless StartProcesses ran.
  const Supervisor* supervisor() const { return supervisor_.get(); }

  // -- Introspection ---------------------------------------------------------

  rts::StreamRegistry& registry() { return registry_; }

  /// The metric registry behind the `gs_stats` stream: every node, channel,
  /// and packet source registers its counters here. Snapshot() is safe
  /// from any thread, including while workers are pumping.
  const telemetry::Registry& telemetry() const { return telemetry_; }

  /// The sampled-tuple tracer, or null when options.trace_sample == 0.
  /// WriteJson is safe after FlushAll (and, being mutex-guarded, any time).
  const telemetry::Tracer* tracer() const { return tracer_.get(); }

  /// The native compiled-query tier (never null; mode kOff when disabled).
  /// Counters and mode are introspectable while queries run.
  const jit::JitEngine& jit() const { return *jit_; }

  /// Per-node statistics: (name, tuples_in, tuples_out, eval_errors).
  /// Safe to call from any thread while workers are pumping: the counters
  /// are single-writer relaxed atomics, so readings are torn-free (though
  /// not a global atomic cut across nodes).
  struct NodeStats {
    std::string name;
    uint64_t tuples_in;
    uint64_t tuples_out;
    uint64_t eval_errors;
  };
  std::vector<NodeStats> GetNodeStats() const;

  /// EXPLAIN ANALYZE (gsrun --analyze): every running query's compiled
  /// plan annotated with live runtime counters — actual tuples in/out,
  /// poll/tuple timing percentiles, input-ring health, the jit tier
  /// actually active vs. predicted, process placement with restart counts.
  /// Safe while workers pump (counter reads are the same folded-snapshot
  /// path gs_stats uses). `mask_volatile` omits wall-clock and occupancy
  /// fields so the output is run-to-run stable (golden tests).
  std::string AnalyzeText(bool mask_volatile = false) const;
  /// Same as one JSON object: {"queries":[<per-query object>, ...]}.
  std::string AnalyzeJson(bool mask_volatile = false) const;

 private:
  /// Which pump stage a node belongs to in threaded mode: LFTA-stage nodes
  /// run on the inject thread, HFTA-stage nodes on the worker pool.
  enum class NodeStage : uint8_t { kLfta, kHfta };

  struct Worker {
    std::thread thread;
    std::shared_ptr<rts::ConsumerWaker> waker;
    std::vector<rts::QueryNode*> nodes;
    /// Points into worker_park_ns_ (engine-owned): StopThreads clears
    /// workers_, but registered histogram readers must stay valid.
    telemetry::Histogram* park_ns = nullptr;
  };

  struct ProtocolSource {
    std::string stream_name;
    gsql::StreamSchema schema;
    /// Field extraction resolved once; payload fields start unwanted and
    /// are switched on as consumers that read them appear.
    InterpretPlan interpret;
    std::unique_ptr<rts::TupleCodec> codec;
    telemetry::Counter packets;
    /// Seconds bound of the last punctuation published on this source;
    /// `gs_stats` consumers can compute punctuation lag against it.
    telemetry::Counter last_punct_sec;
    /// Sim-time distance from each packet to the source's previous
    /// punctuation — the distribution behind the e4 heartbeat story.
    telemetry::Histogram punct_lag;
    /// Packets whose bytes failed to decode even at the Ethernet layer.
    telemetry::Counter parse_errors;
    /// Packets whose timestamp regressed behind the last punctuation:
    /// clamped to the bound (never violating emitted ordering promises).
    telemetry::Counter time_regressions;
    SimTime last_punct_time = 0;
    rts::Row last_row;
    /// Inject-side batch under construction: packets append here and the
    /// batch publishes on size/age/punctuation, or at the next Pump.
    rts::StreamBatch open_batch;
    SimTime batch_open_time = 0;
  };

  /// Ensures a packet stream for (interface, protocol) exists.
  Status EnsureProtocolSource(const std::string& interface_name,
                              const std::string& protocol);

  /// Registers sources required by every Source leaf of `plan`.
  Status EnsureSources(const plan::PlanPtr& plan);

  /// Walks `plan` and marks every protocol-source field some operator
  /// expression references as wanted, so InterpretPacket materializes it.
  /// Consumers the engine cannot introspect (AddNode user nodes, raw
  /// registry subscriptions routed through Subscribe) mark all fields.
  void MarkProtocolFieldUses(const plan::PlanPtr& plan);
  static void MarkAllProtocolFields(ProtocolSource& source);

  /// Rejects mutations while the worker pool runs (structures the workers
  /// read are not guarded by locks) and input after FlushAll sealed the
  /// engine.
  Status CheckMutable(const char* operation) const;
  Status CheckAcceptingInput(const char* operation) const;

  /// One poll round over nodes of `stage`; returns messages processed.
  size_t PumpStage(NodeStage stage, size_t budget_per_node);
  void WorkerLoop(Worker* worker);

  // -- Multi-process internals ----------------------------------------------

  /// The child process's pump loop: heartbeat, command mailbox, node
  /// polling, parked-punctuation retries. Never returns (the child _exits
  /// on kExit or dies by fault/crash).
  void WorkerProcessLoop(size_t worker, uint32_t generation);
  /// Child-side: pumps the worker's own nodes until idle (used for the
  /// kFlushNode/kDrain commands); keeps heartbeating while it runs.
  size_t DrainWorkerNodes(size_t worker, WorkerControl* control,
                          uint64_t* processed_total);
  /// Parent-side failover: marks worker `w`'s nodes parent-owned; with
  /// `resync` their inputs discard until the next punctuation boundary
  /// (the dead process's partial state is unrecoverable).
  void AdoptWorkerNodes(size_t worker, bool resync);
  /// Adopts every worker the supervisor has declared degraded.
  void AdoptDegradedWorkers();
  /// One parent-side pump round in process mode: LFTA stage plus any
  /// adopted nodes.
  size_t PumpProcessRound(size_t budget_per_node);
  /// FlushAll's process-mode body: seal, drain, per-node flush commands in
  /// global upstream order (failing over to adoption), stop, final drain.
  void FlushAllProcesses();
  /// Drives parent pumping and per-worker kDrain commands until no process
  /// makes progress.
  void DrainProcessesUntilIdle();

  /// Publishes every source's open batch (Pump and FlushAll call this so
  /// no injected tuple waits on the batch-size threshold once the engine
  /// is asked to make progress). Returns whether anything was published.
  bool FlushSourceBatches();

  /// EXPLAIN ANALYZE assembly (core/analyze.cc): one registry snapshot
  /// folded into per-node stats plus the engine-level summary header.
  void AssembleAnalyze(std::map<std::string, plan::AnalyzeNodeStats>* by_node,
                       plan::AnalyzeSummary* summary) const;

  /// Registers telemetry for nodes added since the last call (watermark
  /// telemetry_registered_nodes_).
  void RegisterNewNodeTelemetry();
  /// Emits a `gs_stats` snapshot when injected time has advanced past
  /// options_.stats_period since the previous one.
  void MaybeEmitStats(SimTime now);
  /// Runs one overload-controller pressure check when injected time has
  /// advanced past options_.shed.check_period since the previous one.
  /// Inject thread only — the controller and every actuated path (source
  /// sampling, LFTA-stage nodes) live on this thread.
  void MaybeRunShedCheck(SimTime now);

  EngineOptions options_;
  gsql::Catalog catalog_;
  // Declared before nodes_/registry_ so registered readers (which point at
  // node- and channel-owned counters) never outlive the registry's users.
  telemetry::Registry telemetry_;
  // Also before nodes_: nodes keep a raw Tracer pointer (SetTracer).
  std::unique_ptr<telemetry::Tracer> tracer_;
  /// Trace-viewer track ids: 0 is the inject thread, nodes take 1..N.
  uint32_t next_track_id_ = 1;
  /// Park-time histograms per worker slot, engine-owned so the registered
  /// readers survive StopThreads (which clears workers_). Grows lazily in
  /// StartThreads; slot w is reused across start/stop cycles.
  std::vector<std::unique_ptr<telemetry::Histogram>> worker_park_ns_;
  /// Declared before nodes_: operators read published kernel pointers
  /// through their expressions' slots until destruction, so the jit engine
  /// (which owns the kernels and dlopen'd modules) must die after them.
  std::unique_ptr<jit::JitEngine> jit_;
  rts::StreamRegistry registry_;
  std::unique_ptr<telemetry::StatsSource> stats_source_;
  SimTime last_stats_emit_ = 0;
  /// Highest injected sim-time seen; stamps the terminal stats snapshot.
  SimTime last_input_time_ = 0;
  size_t telemetry_registered_nodes_ = 0;
  uint64_t subscriber_seq_ = 0;
  telemetry::Counter heartbeats_;
  /// Shared shedding knobs: written by the controller, read (relaxed) by
  /// the inject path and LFTA-stage nodes — all on the inject thread.
  rts::ShedState shed_state_;
  std::unique_ptr<OverloadController> shed_controller_;
  SimTime last_shed_check_ = 0;
  /// Packets shed at the source by L1 sampling (per bound protocol stream).
  telemetry::Counter shed_tuples_;
  /// Packets offered to InjectPacket, shed or not: the deterministic
  /// 1-in-k sampling phase.
  uint64_t inject_seq_ = 0;
  /// LFTA-table nodes, cached at registration so pressure checks read
  /// their table occupancy without a per-check scan-and-cast.
  std::vector<const ops::LftaAggregateNode*> lfta_agg_nodes_;
  std::vector<std::unique_ptr<rts::QueryNode>> nodes_;
  std::vector<QueryInfo> query_infos_;
  /// Per-query parameter blocks and name->slot maps.
  struct QueryParams {
    rts::ParamBlock block;
    std::vector<std::string> names;
  };
  std::map<std::string, QueryParams> query_params_;
  std::map<std::string, ProtocolSource> protocol_sources_;
  /// Compiled plans retained per query (parallel to query_infos_) so
  /// EXPLAIN ANALYZE can re-render them against live runtime counters.
  struct AnalyzePlan {
    plan::PlannedQuery planned;
    plan::SplitQuery split;
  };
  std::vector<AnalyzePlan> analyze_plans_;
  /// Last pump mode started, for the ANALYZE header ("single" until a
  /// StartThreads/StartProcesses call).
  const char* pump_mode_ = "single";
  /// Parallel to nodes_: each node's pump stage.
  std::vector<NodeStage> node_stages_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_workers_{false};
  bool threads_running_ = false;
  // -- Multi-process mode state ---------------------------------------------
  std::unique_ptr<Supervisor> supervisor_;
  bool processes_running_ = false;
  bool process_telemetry_registered_ = false;
  /// Shm metrics arena (process mode): created by the parent before any
  /// fork so children inherit counters bound into shared slots; the
  /// parent's registry reads fold the live child-side values.
  std::unique_ptr<rts::ShmSegment> metrics_shm_;
  std::unique_ptr<telemetry::MetricsArena> metrics_arena_;
  /// Contiguous arena slot range bound for each worker's node entities; a
  /// restarted incarnation resets its range (new epoch) so the parent's
  /// monotone fold never regresses.
  struct ArenaRange {
    size_t begin = 0;
    size_t count = 0;
  };
  std::vector<ArenaRange> worker_arena_ranges_;
  /// nodes_ indices owned by each worker process.
  std::vector<std::vector<size_t>> process_groups_;
  /// Output stream names per worker (= its nodes' names): each process
  /// retries parked punctuations only on rings it produces into.
  std::vector<std::vector<std::string>> worker_output_streams_;
  /// Streams the parent produces into (sources, LFTA outputs, gs_stats);
  /// adopted nodes' outputs are appended as workers fail over.
  std::vector<std::string> parent_streams_;
  std::vector<char> worker_adopted_;
  std::vector<char> node_adopted_;
  /// Degraded-worker adoptions (each one opens a resync gap, like a
  /// restart does); atomic because the gs_stats reader may run while the
  /// engine thread adopts.
  std::atomic<uint64_t> adopted_resync_{0};
  bool flushed_ = false;
  /// Once a user node exists, sources created later also materialize every
  /// field — the node may subscribe to them through registry().
  bool user_nodes_present_ = false;
};

/// Interprets a raw packet into a row under a precompiled plan: one packet
/// decode, then a switch per field — no name lookups on the hot path.
rts::Row InterpretPacket(const InterpretPlan& plan,
                         const net::Packet& packet);

/// Same, reporting whether the packet failed to decode (fields then
/// interpret as type defaults — malformed input never crashes the
/// interpreter, it is counted via the source's parse_errors metric).
rts::Row InterpretPacket(const InterpretPlan& plan, const net::Packet& packet,
                         bool* malformed);

/// Convenience overload: resolves `schema` (time, timestamp, srcIP,
/// destIP, srcPort, destPort, protocol, ipVersion, len, tcpFlags, tcpSeq,
/// ipId, fragOffset, moreFrags, payload, ipPayload; unknown names get
/// default values) and interprets with every field materialized.
rts::Row InterpretPacket(const gsql::StreamSchema& schema,
                         const net::Packet& packet);

}  // namespace gigascope::core

#endif  // GIGASCOPE_CORE_ENGINE_H_
