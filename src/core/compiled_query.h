#ifndef GIGASCOPE_CORE_COMPILED_QUERY_H_
#define GIGASCOPE_CORE_COMPILED_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/splitter.h"
#include "rts/node.h"
#include "rts/shed_state.h"

namespace gigascope::core {

/// Everything needed to turn plan trees into live operator nodes.
struct InstantiationContext {
  rts::StreamRegistry* registry = nullptr;
  rts::ParamBlock params;
  /// Instantiation-time parameter values (for pass-by-handle arguments).
  std::vector<expr::Value> param_values;
  size_t channel_capacity = 4096;
  int lfta_hash_log2 = 12;
  /// Upper bound on messages per output batch for instantiated operators
  /// (EngineOptions::batch_max_size).
  size_t output_batch = 64;
  /// Aggregate nodes in this plan use the LFTA direct-mapped table.
  bool use_lfta_table = false;
  /// This plan's nodes run in the parent process even in multi-process
  /// mode (the LFTA stage: its inputs are protocol sources and streams
  /// internal to the same plan, both produced on the inject thread), so
  /// its input rings stay heap-backed — no shm serialization for traffic
  /// that never crosses a process boundary.
  bool parent_local = false;
  /// Shared shedding state read by LFTA-stage nodes (nullable = no shedding).
  const rts::ShedState* shed = nullptr;
  /// Receives the created nodes, upstream first.
  std::vector<std::unique_ptr<rts::QueryNode>>* nodes = nullptr;
};

/// Recursively instantiates a plan: children first (each intermediate
/// operator publishes a uniquely named stream; the parent subscribes).
/// The root operator publishes under `output_name`.
///
/// Source nodes do not create operators: a Protocol source subscribes to
/// the engine's `interface.Protocol` packet stream, a Stream source to the
/// named stream — both must already be declared in the registry.
Status InstantiatePlan(const plan::PlanPtr& node,
                       const std::string& output_name,
                       InstantiationContext* ctx);

/// Stream name carrying interpreted packets of `protocol` captured on
/// `interface_name` (e.g. "eth0.PKT").
std::string ProtocolStreamName(const std::string& interface_name,
                               const std::string& protocol);

}  // namespace gigascope::core

#endif  // GIGASCOPE_CORE_COMPILED_QUERY_H_
