#ifndef GIGASCOPE_WORKLOAD_TRAFFIC_GEN_H_
#define GIGASCOPE_WORKLOAD_TRAFFIC_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "net/headers.h"
#include "net/packet.h"

namespace gigascope::workload {

/// Configuration of the synthetic traffic source.
///
/// The generator models a population of flows (5-tuples) with Zipf-skewed
/// popularity — the temporal locality that makes small LFTA hash tables
/// effective — and Pareto on/off burstiness ("network traffic is notoriously
/// bursty"). Offered load is specified in bits/second; inter-packet gaps are
/// exponential within bursts.
struct TrafficConfig {
  uint64_t seed = 1;

  /// Total offered load, bits per second (wire bits, using orig_len).
  double offered_bits_per_sec = 100e6;

  /// Number of distinct flows in the population.
  uint32_t num_flows = 10000;

  /// Zipf exponent for flow popularity (0 = uniform).
  double flow_skew = 1.0;

  /// Mean application payload size in bytes. Actual sizes are exponential,
  /// clamped to [0, max_payload].
  double mean_payload = 400;
  uint32_t max_payload = 1400;

  /// Fraction of generated packets that are TCP (rest UDP).
  double tcp_fraction = 0.9;

  /// Fraction of packets directed at TCP port 80.
  double port80_fraction = 0.0;

  /// Of the port-80 packets, the fraction whose payload is a genuine HTTP
  /// response line matching ^[^\n]*HTTP/1.* (the rest are firewall-tunnel
  /// traffic with opaque payloads). Only meaningful when port80_fraction>0.
  double http_fraction = 0.0;

  /// When > 1, packets arrive in Pareto-length bursts at `burstiness` times
  /// the average rate, separated by idle gaps that restore the average.
  double burstiness = 4.0;

  /// Pareto shape for burst sizes (packets per burst). Lower = heavier tail.
  double burst_alpha = 1.5;
  double burst_min_packets = 8;

  /// IPv4 /8 the destination addresses are drawn from (keyed per flow).
  uint32_t dst_network = 0x0a000000;  // 10.0.0.0
  uint32_t src_network = 0xac100000;  // 172.16.0.0
};

/// One flow's immutable identity.
struct FlowKey {
  uint32_t src_addr;
  uint32_t dst_addr;
  uint16_t src_port;
  uint16_t dst_port;
  uint8_t protocol;  // kIpProtoTcp or kIpProtoUdp
  bool http;         // payload carries an HTTP response line
};

/// Generates a deterministic, timestamped synthetic packet stream.
class TrafficGenerator {
 public:
  explicit TrafficGenerator(const TrafficConfig& config);

  /// Produces the next packet. Timestamps are strictly increasing.
  net::Packet Next();

  /// Simulated time at which the *next* packet will arrive (peek).
  SimTime NextArrivalTime() const { return next_arrival_; }

  const TrafficConfig& config() const { return config_; }

  /// Number of packets generated so far.
  uint64_t packets_generated() const { return sequence_; }

 private:
  FlowKey MakeFlow(uint32_t index) const;
  void ScheduleNextArrival();

  TrafficConfig config_;
  mutable Rng rng_;
  ZipfSampler flow_sampler_;
  std::vector<FlowKey> flows_;
  std::vector<uint32_t> flow_seq_;  // per-flow TCP sequence numbers
  SimTime next_arrival_ = 0;
  uint64_t sequence_ = 0;
  uint64_t burst_remaining_ = 0;
  double in_burst_rate_pps_ = 0;  // packets/sec while inside a burst
  double avg_packet_bits_ = 0;
};

/// Renders an HTTP/1.1 response head used for "genuine HTTP" payloads.
std::string MakeHttpPayload(Rng& rng, size_t target_len);

/// Renders an opaque (non-HTTP) tunnel payload of the given length.
std::string MakeOpaquePayload(Rng& rng, size_t target_len);

}  // namespace gigascope::workload

#endif  // GIGASCOPE_WORKLOAD_TRAFFIC_GEN_H_
