#include "workload/traffic_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gigascope::workload {

namespace {

// Overhead bits per packet beyond the payload: Ethernet + IPv4 + TCP
// headers (UDP is slightly smaller; the difference is immaterial for rate
// accounting).
constexpr double kHeaderBytes =
    net::kEthernetHeaderLen + net::kIpv4MinHeaderLen + net::kTcpMinHeaderLen;

}  // namespace

std::string MakeHttpPayload(Rng& rng, size_t target_len) {
  static const char* const kStatuses[] = {"200 OK", "304 Not Modified",
                                          "404 Not Found", "302 Found"};
  std::string payload = "HTTP/1.1 ";
  payload += kStatuses[rng.NextBelow(4)];
  payload += "\r\nServer: gs-sim\r\nContent-Type: text/html\r\n\r\n";
  while (payload.size() < target_len) {
    payload += static_cast<char>('a' + rng.NextBelow(26));
  }
  payload.resize(std::max(payload.size(), target_len));
  return payload;
}

std::string MakeOpaquePayload(Rng& rng, size_t target_len) {
  // Tunnel traffic: binary-looking bytes, guaranteed to never contain the
  // "HTTP/1" marker because we exclude '/' and restrict the alphabet.
  std::string payload;
  payload.reserve(target_len);
  for (size_t i = 0; i < target_len; ++i) {
    payload += static_cast<char>(0x80 + rng.NextBelow(0x7e));
  }
  return payload;
}

TrafficGenerator::TrafficGenerator(const TrafficConfig& config)
    : config_(config),
      rng_(config.seed),
      flow_sampler_(std::max<uint32_t>(config.num_flows, 1),
                    config.flow_skew) {
  GS_CHECK(config_.offered_bits_per_sec > 0);
  flows_.reserve(config_.num_flows);
  for (uint32_t i = 0; i < config_.num_flows; ++i) {
    flows_.push_back(MakeFlow(i));
  }
  flow_seq_.assign(std::max<uint32_t>(config_.num_flows, 1), 0);
  avg_packet_bits_ = (config_.mean_payload + kHeaderBytes) * 8.0;
  double avg_pps = config_.offered_bits_per_sec / avg_packet_bits_;
  in_burst_rate_pps_ =
      config_.burstiness > 1.0 ? avg_pps * config_.burstiness : avg_pps;
  ScheduleNextArrival();
}

FlowKey TrafficGenerator::MakeFlow(uint32_t index) const {
  FlowKey flow;
  // Deterministic per-index addressing derived from the seed so that two
  // generators with the same config produce the same flow table.
  uint64_t h = Fnv1a64(&index, sizeof(index)) ^ config_.seed * 0x9e3779b9;
  flow.src_addr = config_.src_network | static_cast<uint32_t>(h & 0xfffff);
  flow.dst_addr =
      config_.dst_network | static_cast<uint32_t>((h >> 20) & 0xfffff);
  flow.src_port = static_cast<uint16_t>(1024 + ((h >> 40) & 0x7fff));
  bool port80 = rng_.NextBool(config_.port80_fraction);
  if (port80) {
    flow.dst_port = 80;
    flow.protocol = net::kIpProtoTcp;
    flow.http = rng_.NextBool(config_.http_fraction);
  } else {
    flow.protocol =
        rng_.NextBool(config_.tcp_fraction) ? net::kIpProtoTcp
                                            : net::kIpProtoUdp;
    // Avoid accidentally landing on port 80 so port80_fraction is exact.
    uint16_t port = static_cast<uint16_t>(rng_.NextInRange(1, 65535));
    flow.dst_port = (port == 80) ? 81 : port;
    flow.http = false;
  }
  return flow;
}

void TrafficGenerator::ScheduleNextArrival() {
  if (config_.burstiness > 1.0) {
    if (burst_remaining_ == 0) {
      // Start a new burst after an idle gap sized so the long-run average
      // rate matches offered_bits_per_sec. A burst of N packets at rate R_b
      // takes N/R_b; at average rate R_a it should take N/R_a, so the idle
      // gap is N*(1/R_a - 1/R_b).
      double burst_len = rng_.NextPareto(config_.burst_alpha,
                                         config_.burst_min_packets);
      burst_remaining_ = static_cast<uint64_t>(std::max(1.0, burst_len));
      double avg_pps = config_.offered_bits_per_sec / avg_packet_bits_;
      double gap_seconds = static_cast<double>(burst_remaining_) *
                           (1.0 / avg_pps - 1.0 / in_burst_rate_pps_);
      next_arrival_ += SecondsToSimTime(
          rng_.NextExponential(std::max(gap_seconds, 1e-9)));
    }
    --burst_remaining_;
    next_arrival_ +=
        SecondsToSimTime(rng_.NextExponential(1.0 / in_burst_rate_pps_));
  } else {
    next_arrival_ +=
        SecondsToSimTime(rng_.NextExponential(avg_packet_bits_ /
                                              config_.offered_bits_per_sec));
  }
  // Timestamps must be strictly increasing (the `time` attribute of the
  // PKT protocol is declared monotone increasing).
  next_arrival_ += 1;
}

net::Packet TrafficGenerator::Next() {
  const FlowKey& flow = flows_[flow_sampler_.Sample(rng_)];
  size_t payload_len = static_cast<size_t>(
      std::min<double>(rng_.NextExponential(config_.mean_payload),
                       config_.max_payload));

  net::Packet packet;
  packet.timestamp = next_arrival_;
  uint32_t flow_index =
      static_cast<uint32_t>(&flow - flows_.data());
  if (flow.protocol == net::kIpProtoTcp) {
    net::TcpPacketSpec spec;
    spec.src_addr = flow.src_addr;
    spec.dst_addr = flow.dst_addr;
    spec.src_port = flow.src_port;
    spec.dst_port = flow.dst_port;
    spec.seq = flow_seq_[flow_index];
    spec.ip_id = static_cast<uint16_t>(sequence_);
    spec.payload = flow.http ? MakeHttpPayload(rng_, payload_len)
                             : MakeOpaquePayload(rng_, payload_len);
    flow_seq_[flow_index] += static_cast<uint32_t>(spec.payload.size());
    packet.bytes = net::BuildTcpPacket(spec);
  } else {
    net::UdpPacketSpec spec;
    spec.src_addr = flow.src_addr;
    spec.dst_addr = flow.dst_addr;
    spec.src_port = flow.src_port;
    spec.dst_port = flow.dst_port;
    spec.ip_id = static_cast<uint16_t>(sequence_);
    spec.payload = MakeOpaquePayload(rng_, payload_len);
    packet.bytes = net::BuildUdpPacket(spec);
  }
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  ++sequence_;
  ScheduleNextArrival();
  return packet;
}

}  // namespace gigascope::workload
