#ifndef GIGASCOPE_WORKLOAD_NETFLOW_GEN_H_
#define GIGASCOPE_WORKLOAD_NETFLOW_GEN_H_

#include <cstdint>
#include <map>
#include <vector>

#include "net/headers.h"
#include "net/packet.h"

namespace gigascope::workload {

/// One Netflow-style flow record, as produced by a router (§2.1: "traffic
/// summaries produced by routers ... the AT&T IP backbone alone generates
/// 500 Gbytes of data per day").
struct FlowRecord {
  uint64_t end_time = 0;    // seconds; monotonically increasing across records
  uint64_t start_time = 0;  // seconds; banded-increasing(dump interval)
  uint32_t src_addr = 0;
  uint32_t dst_addr = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 0;
  uint64_t packets = 0;
  uint64_t bytes = 0;
};

/// Aggregates a packet stream into Netflow records the way a router's flow
/// cache does: per-5-tuple accumulation, with the whole cache dumped every
/// `dump_interval_seconds` (the paper's 30 seconds).
///
/// The emission discipline creates exactly the ordering properties §2.1
/// describes: records leave sorted by endTime (monotonically increasing),
/// while startTime is only *banded*-increasing — a record dumped at time T
/// may have started as early as T - dump_interval. This generator exists so
/// the NETFLOW protocol path (banded aggregation, increasing-in-group) can
/// be exercised end to end without router traces.
class NetflowGenerator {
 public:
  explicit NetflowGenerator(uint64_t dump_interval_seconds = 30);

  /// Feeds one captured packet. Returns the records dumped by any cache
  /// flushes this packet's timestamp triggered (possibly empty). Records
  /// within one dump are ordered by end time.
  std::vector<FlowRecord> OnPacket(const net::Packet& packet);

  /// Flushes the remaining cache (end of stream), in end-time order.
  std::vector<FlowRecord> FlushAll();

  size_t active_flows() const { return cache_.size(); }
  uint64_t records_emitted() const { return records_emitted_; }
  uint64_t dump_interval_seconds() const { return dump_interval_; }

 private:
  struct CacheKey {
    uint32_t src;
    uint32_t dst;
    uint16_t sport;
    uint16_t dport;
    uint8_t proto;
    bool operator<(const CacheKey& other) const {
      return std::tie(src, dst, sport, dport, proto) <
             std::tie(other.src, other.dst, other.sport, other.dport,
                      other.proto);
    }
  };
  struct CacheEntry {
    uint64_t start_time;
    uint64_t last_time;
    uint64_t packets = 0;
    uint64_t bytes = 0;
  };

  std::vector<FlowRecord> Dump(uint64_t now_seconds);

  uint64_t dump_interval_;
  uint64_t next_dump_ = 0;
  std::map<CacheKey, CacheEntry> cache_;
  uint64_t records_emitted_ = 0;
  uint64_t last_end_time_ = 0;
};

}  // namespace gigascope::workload

#endif  // GIGASCOPE_WORKLOAD_NETFLOW_GEN_H_
