#include "workload/netflow_gen.h"

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"

namespace gigascope::workload {

NetflowGenerator::NetflowGenerator(uint64_t dump_interval_seconds)
    : dump_interval_(dump_interval_seconds) {
  GS_CHECK(dump_interval_ > 0);
}

std::vector<FlowRecord> NetflowGenerator::OnPacket(
    const net::Packet& packet) {
  uint64_t now = static_cast<uint64_t>(SimTimeToSeconds(packet.timestamp));
  std::vector<FlowRecord> dumped;
  if (next_dump_ == 0) next_dump_ = now + dump_interval_;
  while (now >= next_dump_) {
    std::vector<FlowRecord> batch = Dump(next_dump_);
    dumped.insert(dumped.end(), batch.begin(), batch.end());
    next_dump_ += dump_interval_;
  }

  auto decoded = net::DecodePacket(packet.view());
  if (!decoded.ok() || !decoded->is_ipv4()) return dumped;

  CacheKey key;
  key.src = decoded->ip->src_addr;
  key.dst = decoded->ip->dst_addr;
  key.proto = decoded->ip->protocol;
  key.sport = decoded->is_tcp()   ? decoded->tcp->src_port
              : decoded->is_udp() ? decoded->udp->src_port
                                  : 0;
  key.dport = decoded->is_tcp()   ? decoded->tcp->dst_port
              : decoded->is_udp() ? decoded->udp->dst_port
                                  : 0;

  CacheEntry& entry = cache_[key];
  if (entry.packets == 0) entry.start_time = now;
  entry.last_time = now;
  entry.packets += 1;
  entry.bytes += packet.orig_len;
  return dumped;
}

std::vector<FlowRecord> NetflowGenerator::Dump(uint64_t now_seconds) {
  std::vector<FlowRecord> records;
  records.reserve(cache_.size());
  for (const auto& [key, entry] : cache_) {
    FlowRecord record;
    // A router stamps the dump time as the record's export-visible end
    // time ceiling; we use the flow's own last-seen time, then sort — the
    // stream leaves the router ordered by end time (§2.1).
    record.end_time = entry.last_time;
    record.start_time = entry.start_time;
    record.src_addr = key.src;
    record.dst_addr = key.dst;
    record.src_port = key.sport;
    record.dst_port = key.dport;
    record.protocol = key.proto;
    record.packets = entry.packets;
    record.bytes = entry.bytes;
    records.push_back(record);
  }
  cache_.clear();
  std::sort(records.begin(), records.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              return a.end_time < b.end_time;
            });
  // The dump as a whole happens after any earlier dump: clamp end times to
  // keep the global stream monotone even across dump boundaries.
  for (FlowRecord& record : records) {
    record.end_time = std::max(record.end_time, last_end_time_);
    last_end_time_ = record.end_time;
  }
  records_emitted_ += records.size();
  (void)now_seconds;
  return records;
}

std::vector<FlowRecord> NetflowGenerator::FlushAll() {
  return Dump(next_dump_);
}

}  // namespace gigascope::workload
