#ifndef GIGASCOPE_SIM_EVENT_SIM_H_
#define GIGASCOPE_SIM_EVENT_SIM_H_

#include <cstdint>

#include "common/clock.h"

namespace gigascope::sim {

/// Converts a cost expressed in seconds of CPU time to simulated nanoseconds.
constexpr SimTime CostToNanos(double seconds) {
  return static_cast<SimTime>(seconds * 1e9);
}

/// A unit of deferred user-level work on the host CPU (one packet's worth of
/// processing). `remaining` counts down as the simulated CPU makes progress
/// between interrupt bursts; `tag` identifies the payload for the pipeline.
struct UserJob {
  SimTime remaining = 0;  // nanoseconds of CPU work left
  uint64_t tag = 0;       // pipeline-defined payload identifier
  uint32_t wire_len = 0;  // original packet length, for byte accounting
};

}  // namespace gigascope::sim

#endif  // GIGASCOPE_SIM_EVENT_SIM_H_
