#ifndef GIGASCOPE_SIM_DISK_H_
#define GIGASCOPE_SIM_DISK_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/clock.h"
#include "common/rng.h"

namespace gigascope::sim {

/// Single-server disk model with heavy-tailed stalls.
///
/// The paper's finding for the dump-to-disk architecture is that "touching
/// disk kills performance not because it is slow but because it generates
/// long and unpredictable delays throughout the system". This model captures
/// exactly that: sustained sequential bandwidth is generous (striped disks),
/// but each write has a small probability of a Pareto-distributed stall
/// (seek storms, cache flushes, filesystem metadata). While the disk stalls,
/// its queue backs up, the writer blocks, and the capture ring overflows.
class DiskModel {
 public:
  struct Params {
    double bytes_per_sec = 50e6;       // ~400 Mbit/s sustained (striped)
    double stall_probability = 0.002;  // per write
    double stall_alpha = 1.1;         // Pareto shape (heavy tail)
    double stall_min_seconds = 0.001; // minimum stall
    double stall_cap_seconds = 0.25;  // truncate the tail for stability
    size_t queue_capacity = 128;      // pending writes before writer blocks
  };

  DiskModel(const Params& params, uint64_t seed);

  /// Advances the disk server to `now`, completing queued writes.
  void DrainUntil(SimTime now);

  /// True if another write can be queued at `now`.
  bool HasSpace(SimTime now);

  /// Earliest time at which a queue slot will be free (>= now). Callers use
  /// this to model a writer blocking in write(2).
  SimTime NextSlotFreeTime(SimTime now);

  /// Queues one write. Must only be called when HasSpace() is true.
  void Write(SimTime now, uint32_t len);

  uint64_t writes_completed() const { return writes_completed_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t stalls() const { return stalls_; }

 private:
  struct PendingWrite {
    SimTime enqueued;
    uint32_t len;
  };

  SimTime ServiceTime(uint32_t len);
  size_t Occupancy() const {
    return queue_.size() + (in_service_ ? 1 : 0);
  }

  Params params_;
  Rng rng_;
  std::deque<PendingWrite> queue_;
  bool in_service_ = false;
  uint32_t in_service_len_ = 0;
  SimTime busy_until_ = 0;  // completion time of the in-service write
  uint64_t writes_completed_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t stalls_ = 0;
};

}  // namespace gigascope::sim

#endif  // GIGASCOPE_SIM_DISK_H_
