#ifndef GIGASCOPE_SIM_CAPTURE_PIPELINE_H_
#define GIGASCOPE_SIM_CAPTURE_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.h"
#include "sim/disk.h"
#include "sim/host.h"
#include "sim/nic.h"
#include "workload/traffic_gen.h"

namespace gigascope::sim {

/// The four capture architectures compared in §4 of the paper.
enum class CaptureMode {
  kDiskDump,     // option 1: dump raw packets to disk for post-facto analysis
  kPcapDiscard,  // option 2: read via libpcap, discard (best-case processing)
  kHostLfta,     // option 3: Gigascope, LFTA executing on the host CPU
  kNicLfta,      // option 4: Gigascope, LFTA executing on the NIC
};

std::string CaptureModeName(CaptureMode mode);

/// Configuration of one simulated capture run.
///
/// Cost constants are calibrated to a circa-2003 733 MHz host (§4): they are
/// inputs to the model, not measurements, and are shared across all four
/// modes so the comparison isolates the architecture.
struct PipelineConfig {
  workload::TrafficConfig traffic;
  CaptureMode mode = CaptureMode::kPcapDiscard;
  double duration_seconds = 1.0;

  // Host model.
  double interrupt_cost_seconds = 4e-6;   // per-packet IRQ + DMA bookkeeping
  double pcap_read_cost_seconds = 1.5e-6; // per-packet user copy + loop
  double lfta_filter_cost_seconds = 0.8e-6;  // LFTA predicate evaluation
  double hfta_regex_cost_seconds = 12e-6;    // HTTP regex on the payload
  double disk_copy_cost_seconds = 2e-6;      // buffer copy before write(2)
  size_t ring_capacity = 2048;

  // NIC model (only kNicLfta runs a program on the card).
  double nic_filter_cost_seconds = 0.6e-6;
  size_t nic_fifo_capacity = 512;

  // Disk model (only kDiskDump uses it).
  DiskModel::Params disk;

  // The query: count port-`filter_port` packets and, of those, the ones
  // whose payload matches the HTTP regex. `payload_predicate` lets callers
  // inject the real UDF regex engine; when null a built-in substring check
  // for "HTTP/1" on the first line is used.
  uint16_t filter_port = 80;
  std::function<bool(ByteSpan payload)> payload_predicate;
};

/// Results of one run.
struct PipelineStats {
  uint64_t offered_packets = 0;
  uint64_t offered_bytes = 0;
  uint64_t nic_filtered = 0;   // consumed on the NIC (option 4)
  uint64_t nic_dropped = 0;    // NIC FIFO overflow
  uint64_t host_interrupts = 0;
  uint64_t ring_drops = 0;
  uint64_t completed = 0;      // user jobs finished
  uint64_t backlog = 0;        // still queued at end of run (not drops)
  uint64_t disk_bytes = 0;
  uint64_t disk_stalls = 0;
  uint64_t port80_packets = 0;  // among processed packets
  uint64_t http_packets = 0;    // among processed port-80 packets
  double interrupt_load = 0;    // fraction of CPU in interrupt context

  /// Packet drop rate: packets lost before processing / offered. Packets
  /// filtered on the NIC count as processed (the query saw them).
  double LossRate() const;

  /// The §4 query's answer: fraction of port-80 traffic that is HTTP.
  double HttpFraction() const;
};

/// Runs the capture simulation for one configuration.
PipelineStats RunCapturePipeline(const PipelineConfig& config);

/// Sweeps offered load and returns the highest rate (bits/sec) whose loss
/// rate stays at or below `max_loss` (the paper's 2% criterion). Rates are
/// tested at the given points, which must be increasing.
double FindMaxSustainedRate(PipelineConfig config,
                            const std::vector<double>& rates_bps,
                            double max_loss);

}  // namespace gigascope::sim

#endif  // GIGASCOPE_SIM_CAPTURE_PIPELINE_H_
