#ifndef GIGASCOPE_SIM_NIC_H_
#define GIGASCOPE_SIM_NIC_H_

#include <cstdint>
#include <functional>

#include "bpf/program.h"
#include "common/clock.h"
#include "net/packet.h"

namespace gigascope::sim {

/// Simulated network interface card.
///
/// Without an on-board program the NIC DMAs every frame to the host at line
/// rate. With one (BPF pre-filter or a full on-NIC LFTA, per §3), it spends
/// `filter_cost_seconds` of NIC-processor time per frame; frames the program
/// rejects are consumed on the card and never touch the host. The NIC has a
/// small hardware FIFO: if frames arrive faster than its processor drains
/// them, the FIFO overflows and the NIC itself drops (this caps option 4).
class NicModel {
 public:
  struct Params {
    /// Per-frame cost when an on-NIC program runs. Zero when the NIC is in
    /// plain DMA mode (line-rate forwarding).
    double filter_cost_seconds = 0;
    /// Hardware FIFO depth, frames.
    size_t fifo_capacity = 256;
    /// Bytes of matching frames delivered to the host (0 = whole frame).
    uint32_t snap_len = 0;
  };

  /// Outcome of offering one frame to the NIC.
  enum class Disposition {
    kForwarded,   // frame (possibly truncated) goes to the host
    kFiltered,    // consumed on the NIC (program rejected it)
    kDropped,     // NIC FIFO overflow
  };

  NicModel() : NicModel(Params{}, nullptr) {}

  /// `program` may be null (no on-NIC filtering).
  NicModel(const Params& params, const bpf::Program* program);

  /// Offers a frame arriving at `now`. On kForwarded, `*deliver_at` is when
  /// the frame reaches the host and `*packet` has been snap-truncated.
  Disposition Offer(SimTime now, net::Packet* packet, SimTime* deliver_at);

  uint64_t frames_seen() const { return frames_seen_; }
  uint64_t frames_filtered() const { return frames_filtered_; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t frames_forwarded() const { return frames_forwarded_; }

 private:
  Params params_;
  const bpf::Program* program_;
  SimTime busy_until_ = 0;
  uint64_t frames_seen_ = 0;
  uint64_t frames_filtered_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t frames_forwarded_ = 0;
};

}  // namespace gigascope::sim

#endif  // GIGASCOPE_SIM_NIC_H_
