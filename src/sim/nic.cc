#include "sim/nic.h"

#include <algorithm>

#include "bpf/interpreter.h"
#include "sim/event_sim.h"

namespace gigascope::sim {

NicModel::NicModel(const Params& params, const bpf::Program* program)
    : params_(params), program_(program) {}

NicModel::Disposition NicModel::Offer(SimTime now, net::Packet* packet,
                                      SimTime* deliver_at) {
  ++frames_seen_;

  if (program_ == nullptr || params_.filter_cost_seconds <= 0) {
    // Plain DMA mode: the card forwards at line rate with negligible delay.
    if (program_ != nullptr && !bpf::Matches(*program_, packet->view())) {
      ++frames_filtered_;
      return Disposition::kFiltered;
    }
    if (params_.snap_len > 0) net::ApplySnapLen(packet, params_.snap_len);
    *deliver_at = now;
    ++frames_forwarded_;
    return Disposition::kForwarded;
  }

  // On-NIC processing: single NIC processor, FIFO of fixed depth. The
  // number of frames still queued is the busy backlog divided by the
  // per-frame cost.
  SimTime cost = CostToNanos(params_.filter_cost_seconds);
  SimTime backlog = std::max<SimTime>(0, busy_until_ - now);
  if (backlog / cost >= static_cast<SimTime>(params_.fifo_capacity)) {
    ++frames_dropped_;
    return Disposition::kDropped;
  }
  busy_until_ = std::max(busy_until_, now) + cost;

  uint32_t keep = bpf::Run(*program_, packet->view());
  if (keep == 0) {
    ++frames_filtered_;
    return Disposition::kFiltered;
  }
  if (keep != 0xffffffff) net::ApplySnapLen(packet, keep);
  if (params_.snap_len > 0) net::ApplySnapLen(packet, params_.snap_len);
  *deliver_at = busy_until_;
  ++frames_forwarded_;
  return Disposition::kForwarded;
}

}  // namespace gigascope::sim
