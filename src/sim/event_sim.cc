#include "sim/event_sim.h"

namespace gigascope::sim {

// Header-only definitions; this file anchors the library target.

}  // namespace gigascope::sim
