#include "sim/disk.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/event_sim.h"

namespace gigascope::sim {

DiskModel::DiskModel(const Params& params, uint64_t seed)
    : params_(params), rng_(seed) {
  GS_CHECK(params_.bytes_per_sec > 0);
  GS_CHECK(params_.queue_capacity > 0);
}

SimTime DiskModel::ServiceTime(uint32_t len) {
  double seconds = static_cast<double>(len) / params_.bytes_per_sec;
  if (rng_.NextBool(params_.stall_probability)) {
    double stall = rng_.NextPareto(params_.stall_alpha,
                                   params_.stall_min_seconds);
    seconds += std::min(stall, params_.stall_cap_seconds);
    ++stalls_;
  }
  return CostToNanos(seconds);
}

void DiskModel::DrainUntil(SimTime now) {
  while (true) {
    if (in_service_) {
      if (busy_until_ > now) return;  // still writing
      bytes_written_ += in_service_len_;
      ++writes_completed_;
      in_service_ = false;
    }
    if (queue_.empty()) return;
    const PendingWrite& write = queue_.front();
    SimTime start = std::max(busy_until_, write.enqueued);
    in_service_ = true;
    in_service_len_ = write.len;
    busy_until_ = start + ServiceTime(write.len);
    queue_.pop_front();
  }
}

bool DiskModel::HasSpace(SimTime now) {
  DrainUntil(now);
  return Occupancy() < params_.queue_capacity;
}

SimTime DiskModel::NextSlotFreeTime(SimTime now) {
  DrainUntil(now);
  if (Occupancy() < params_.queue_capacity) return now;
  // The slot frees when the in-service write completes; the caller
  // re-checks HasSpace at that time (later writes' service times are
  // sampled only when they start).
  return std::max(now + 1, busy_until_);
}

void DiskModel::Write(SimTime now, uint32_t len) {
  DrainUntil(now);
  GS_CHECK(Occupancy() < params_.queue_capacity);
  queue_.push_back(PendingWrite{now, len});
  DrainUntil(now);
}

}  // namespace gigascope::sim
