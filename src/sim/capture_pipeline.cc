#include "sim/capture_pipeline.h"

#include <algorithm>

#include "bpf/interpreter.h"
#include "common/logging.h"
#include "net/headers.h"

namespace gigascope::sim {

namespace {

// Job tag bits: what the (already-inspected) packet will contribute when
// its simulated processing completes.
constexpr uint64_t kTagPortMatch = 1;
constexpr uint64_t kTagHttpMatch = 2;

// Built-in fallback predicate for ^[^\n]*HTTP/1.* — does the first line of
// the payload contain "HTTP/1"?
bool DefaultHttpPredicate(ByteSpan payload) {
  static constexpr char kMarker[] = "HTTP/1";
  constexpr size_t kMarkerLen = sizeof(kMarker) - 1;
  size_t line_end = payload.size();
  for (size_t i = 0; i < payload.size(); ++i) {
    if (payload[i] == '\n') {
      line_end = i;
      break;
    }
  }
  if (line_end < kMarkerLen) return false;
  for (size_t i = 0; i + kMarkerLen <= line_end; ++i) {
    if (std::memcmp(payload.data() + i, kMarker, kMarkerLen) == 0) return true;
  }
  return false;
}

}  // namespace

std::string CaptureModeName(CaptureMode mode) {
  switch (mode) {
    case CaptureMode::kDiskDump:
      return "disk-dump";
    case CaptureMode::kPcapDiscard:
      return "libpcap-discard";
    case CaptureMode::kHostLfta:
      return "gigascope-host-lfta";
    case CaptureMode::kNicLfta:
      return "gigascope-nic-lfta";
  }
  return "?";
}

double PipelineStats::LossRate() const {
  if (offered_packets == 0) return 0;
  uint64_t lost = nic_dropped + ring_drops;
  return static_cast<double>(lost) / static_cast<double>(offered_packets);
}

double PipelineStats::HttpFraction() const {
  if (port80_packets == 0) return 0;
  return static_cast<double>(http_packets) /
         static_cast<double>(port80_packets);
}

PipelineStats RunCapturePipeline(const PipelineConfig& config) {
  PipelineStats stats;

  workload::TrafficGenerator gen(config.traffic);
  const SimTime end_time = SecondsToSimTime(config.duration_seconds);

  auto http_match = config.payload_predicate
                        ? config.payload_predicate
                        : std::function<bool(ByteSpan)>(DefaultHttpPredicate);

  // The LFTA's selection predicate as a mini-BPF program; run on the host
  // for kHostLfta, on the card for kNicLfta.
  bpf::Program port_filter =
      bpf::BuildTcpDstPortFilter(config.filter_port, /*snap_len=*/0);

  DiskModel disk(config.disk, config.traffic.seed ^ 0xd15c);

  HostModel::CompletionFn on_complete = [&](const UserJob& job, SimTime t) {
    ++stats.completed;
    if (job.tag & kTagPortMatch) ++stats.port80_packets;
    if (job.tag & kTagHttpMatch) ++stats.http_packets;
    if (config.mode == CaptureMode::kDiskDump) {
      // The writer blocks until the disk queue has space.
      SimTime free_at = disk.NextSlotFreeTime(t);
      while (!disk.HasSpace(free_at)) {
        free_at = disk.NextSlotFreeTime(free_at);
      }
      disk.Write(free_at, job.wire_len);
      return free_at;
    }
    return t;
  };

  HostModel::Params host_params;
  host_params.interrupt_cost_seconds = config.interrupt_cost_seconds;
  host_params.ring_capacity = config.ring_capacity;
  HostModel host(host_params, on_complete);

  NicModel::Params nic_params;
  const bpf::Program* nic_program = nullptr;
  if (config.mode == CaptureMode::kNicLfta) {
    nic_params.filter_cost_seconds = config.nic_filter_cost_seconds;
    nic_params.fifo_capacity = config.nic_fifo_capacity;
    nic_program = &port_filter;
  }
  NicModel nic(nic_params, nic_program);

  while (true) {
    if (gen.NextArrivalTime() > end_time) break;
    net::Packet packet = gen.Next();
    ++stats.offered_packets;
    stats.offered_bytes += packet.orig_len;

    SimTime deliver_at = packet.timestamp;
    NicModel::Disposition disposition = nic.Offer(packet.timestamp, &packet,
                                                  &deliver_at);
    if (disposition == NicModel::Disposition::kDropped) continue;
    if (disposition == NicModel::Disposition::kFiltered) continue;

    // Inspect the packet now (results are time-independent); the simulated
    // *cost* of this work is charged to the user job below.
    UserJob job;
    job.wire_len = packet.orig_len;
    double cost = 0;
    switch (config.mode) {
      case CaptureMode::kDiskDump:
        cost = config.disk_copy_cost_seconds;
        break;
      case CaptureMode::kPcapDiscard:
        cost = config.pcap_read_cost_seconds;
        break;
      case CaptureMode::kHostLfta: {
        cost = config.lfta_filter_cost_seconds;
        if (bpf::Matches(port_filter, packet.view())) {
          job.tag |= kTagPortMatch;
          auto decoded = net::DecodePacket(packet.view());
          if (decoded.ok() && decoded->is_tcp() &&
              http_match(decoded->payload)) {
            job.tag |= kTagHttpMatch;
          }
          cost += config.hfta_regex_cost_seconds;
        }
        break;
      }
      case CaptureMode::kNicLfta: {
        // Everything reaching the host already matched the on-NIC filter.
        job.tag |= kTagPortMatch;
        auto decoded = net::DecodePacket(packet.view());
        if (decoded.ok() && decoded->is_tcp() &&
            http_match(decoded->payload)) {
          job.tag |= kTagHttpMatch;
        }
        cost = config.pcap_read_cost_seconds + config.hfta_regex_cost_seconds;
        break;
      }
    }
    job.remaining = CostToNanos(cost);
    host.OnPacketArrival(deliver_at, job);
  }

  host.RunUserUntil(end_time);
  disk.DrainUntil(end_time);

  stats.nic_filtered = nic.frames_filtered();
  stats.nic_dropped = nic.frames_dropped();
  stats.host_interrupts = host.interrupts();
  stats.ring_drops = host.ring_drops();
  stats.backlog = host.ring_occupancy();
  stats.disk_bytes = disk.bytes_written();
  stats.disk_stalls = disk.stalls();
  stats.interrupt_load = host.InterruptLoad(end_time);
  return stats;
}

double FindMaxSustainedRate(PipelineConfig config,
                            const std::vector<double>& rates_bps,
                            double max_loss) {
  double best = 0;
  for (double rate : rates_bps) {
    config.traffic.offered_bits_per_sec = rate;
    PipelineStats stats = RunCapturePipeline(config);
    if (stats.LossRate() <= max_loss) {
      best = rate;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace gigascope::sim
