#ifndef GIGASCOPE_SIM_HOST_H_
#define GIGASCOPE_SIM_HOST_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "common/clock.h"
#include "sim/event_sim.h"

namespace gigascope::sim {

/// Simulated monitoring host: one CPU, interrupt-priority packet reception,
/// and a kernel capture ring drained by a user-level process.
///
/// Model:
///  - Every packet that reaches the host raises an interrupt costing
///    `interrupt_cost_seconds` of CPU. Interrupt work has absolute priority
///    over user-level work; it is modelled as a busy horizon that the user
///    process can never run inside.
///  - After interrupt service the packet sits in a fixed-capacity ring.
///    If the ring is full at arrival, the packet is dropped (counted).
///  - The user process consumes CPU only in the gaps left by interrupt
///    work. When offered load times interrupt cost approaches one CPU,
///    user-level progress stops — this is *interrupt livelock* (§4), and
///    the ring overflows regardless of how cheap user processing is.
///
/// Job completion can block (e.g. on a full disk queue): the completion
/// callback returns the time at which the job actually finished, which may
/// be later than the CPU-completion time.
class HostModel {
 public:
  struct Params {
    double interrupt_cost_seconds = 4e-6;
    size_t ring_capacity = 2048;
  };

  /// Called when a user job's CPU work is done at time `t`. Returns the
  /// actual completion time (>= t); return a later time to model blocking
  /// (the user process cannot run again until then).
  using CompletionFn = std::function<SimTime(const UserJob& job, SimTime t)>;

  HostModel(const Params& params, CompletionFn on_complete);

  /// Delivers a packet to the host at `now`. Accounts the interrupt, then
  /// enqueues the user job; returns false if the ring was full (drop).
  bool OnPacketArrival(SimTime now, UserJob job);

  /// Advances user-level processing to `now` (call once more at the end of
  /// the simulation with the final time).
  void RunUserUntil(SimTime now);

  uint64_t interrupts() const { return interrupts_; }
  uint64_t ring_drops() const { return ring_drops_; }
  uint64_t jobs_completed() const { return jobs_completed_; }
  size_t ring_occupancy() const { return ring_.size(); }

  /// Fraction of CPU time claimed by interrupts over the run so far.
  double InterruptLoad(SimTime now) const;

 private:
  Params params_;
  CompletionFn on_complete_;
  SimTime interrupt_busy_until_ = 0;
  SimTime interrupt_work_total_ = 0;
  SimTime user_cursor_ = 0;
  SimTime blocked_until_ = 0;
  std::deque<UserJob> ring_;
  uint64_t interrupts_ = 0;
  uint64_t ring_drops_ = 0;
  uint64_t jobs_completed_ = 0;
};

}  // namespace gigascope::sim

#endif  // GIGASCOPE_SIM_HOST_H_
