#include "sim/host.h"

#include <algorithm>

#include "common/logging.h"

namespace gigascope::sim {

HostModel::HostModel(const Params& params, CompletionFn on_complete)
    : params_(params), on_complete_(std::move(on_complete)) {
  GS_CHECK(params_.ring_capacity > 0);
}

bool HostModel::OnPacketArrival(SimTime now, UserJob job) {
  // Let the user process use the CPU gap since the last event first, with
  // the interrupt horizon as it stood before this arrival.
  RunUserUntil(now);

  // Interrupt service: unconditional CPU cost, even for packets that end up
  // dropped at the ring (the IRQ fires regardless — that is the essence of
  // livelock).
  SimTime cost = CostToNanos(params_.interrupt_cost_seconds);
  interrupt_busy_until_ = std::max(interrupt_busy_until_, now) + cost;
  interrupt_work_total_ += cost;
  ++interrupts_;

  if (ring_.size() >= params_.ring_capacity) {
    ++ring_drops_;
    return false;
  }
  ring_.push_back(job);
  return true;
}

void HostModel::RunUserUntil(SimTime now) {
  // The user process may run only after the interrupt backlog clears and
  // any blocking completion has returned.
  SimTime t = std::max({user_cursor_, interrupt_busy_until_, blocked_until_});
  while (!ring_.empty() && t < now) {
    UserJob& job = ring_.front();
    SimTime budget = now - t;
    if (job.remaining <= budget) {
      t += job.remaining;
      job.remaining = 0;
      SimTime done = on_complete_(job, t);
      GS_CHECK(done >= t);
      blocked_until_ = done;
      t = done;
      ring_.pop_front();
      ++jobs_completed_;
    } else {
      job.remaining -= budget;
      t = now;
    }
  }
  user_cursor_ = now;
}

double HostModel::InterruptLoad(SimTime now) const {
  if (now <= 0) return 0;
  return static_cast<double>(interrupt_work_total_) /
         static_cast<double>(now);
}

}  // namespace gigascope::sim
