#include "net/pcap.h"

#include <cstring>

#include "common/bytes.h"

namespace gigascope::net {

namespace {

constexpr uint16_t kVersionMajor = 2;
constexpr uint16_t kVersionMinor = 4;

uint32_t ByteSwap32(uint32_t v) {
  return v >> 24 | (v >> 8 & 0xff00) | (v << 8 & 0xff0000) | v << 24;
}

uint16_t ByteSwap16(uint16_t v) {
  return static_cast<uint16_t>(v >> 8 | v << 8);
}

Status WriteU32(std::FILE* f, uint32_t v) {
  if (std::fwrite(&v, sizeof(v), 1, f) != 1) {
    return Status::Internal("pcap write failed");
  }
  return Status::Ok();
}

Status WriteU16(std::FILE* f, uint16_t v) {
  if (std::fwrite(&v, sizeof(v), 1, f) != 1) {
    return Status::Internal("pcap write failed");
  }
  return Status::Ok();
}

bool ReadU32(std::FILE* f, bool swap, uint32_t* v) {
  if (std::fread(v, sizeof(*v), 1, f) != 1) return false;
  if (swap) *v = ByteSwap32(*v);
  return true;
}

bool ReadU16(std::FILE* f, bool swap, uint16_t* v) {
  if (std::fread(v, sizeof(*v), 1, f) != 1) return false;
  if (swap) *v = ByteSwap16(*v);
  return true;
}

}  // namespace

PcapWriter::~PcapWriter() {
  if (file_ != nullptr) Close().ok();
}

Status PcapWriter::Open(const std::string& path, uint32_t snap_len) {
  if (file_ != nullptr) return Status::Internal("PcapWriter already open");
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Internal("cannot open pcap file for writing: " + path);
  }
  GS_RETURN_IF_ERROR(WriteU32(file_, kPcapMagicNanos));
  GS_RETURN_IF_ERROR(WriteU16(file_, kVersionMajor));
  GS_RETURN_IF_ERROR(WriteU16(file_, kVersionMinor));
  GS_RETURN_IF_ERROR(WriteU32(file_, 0));  // thiszone
  GS_RETURN_IF_ERROR(WriteU32(file_, 0));  // sigfigs
  GS_RETURN_IF_ERROR(WriteU32(file_, snap_len));
  GS_RETURN_IF_ERROR(WriteU32(file_, kLinkTypeEthernet));
  packets_written_ = 0;
  return Status::Ok();
}

Status PcapWriter::Write(const Packet& packet) {
  if (file_ == nullptr) return Status::Internal("PcapWriter not open");
  uint32_t secs = static_cast<uint32_t>(packet.timestamp / kNanosPerSecond);
  uint32_t nanos = static_cast<uint32_t>(packet.timestamp % kNanosPerSecond);
  GS_RETURN_IF_ERROR(WriteU32(file_, secs));
  GS_RETURN_IF_ERROR(WriteU32(file_, nanos));
  GS_RETURN_IF_ERROR(WriteU32(file_, static_cast<uint32_t>(packet.bytes.size())));
  GS_RETURN_IF_ERROR(WriteU32(file_, packet.orig_len));
  if (!packet.bytes.empty() &&
      std::fwrite(packet.bytes.data(), 1, packet.bytes.size(), file_) !=
          packet.bytes.size()) {
    return Status::Internal("pcap packet body write failed");
  }
  ++packets_written_;
  return Status::Ok();
}

Status PcapWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::Internal("pcap close failed");
  return Status::Ok();
}

PcapReader::~PcapReader() {
  if (file_ != nullptr) Close().ok();
}

Status PcapReader::Open(const std::string& path) {
  if (file_ != nullptr) return Status::Internal("PcapReader already open");
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::NotFound("cannot open pcap file: " + path);
  }
  uint32_t magic;
  if (std::fread(&magic, sizeof(magic), 1, file_) != 1) {
    return Status::ParseError("pcap file too short for magic");
  }
  if (magic == kPcapMagic) {
    swap_ = false;
    nanos_ = false;
  } else if (magic == kPcapMagicNanos) {
    swap_ = false;
    nanos_ = true;
  } else if (ByteSwap32(magic) == kPcapMagic) {
    swap_ = true;
    nanos_ = false;
  } else if (ByteSwap32(magic) == kPcapMagicNanos) {
    swap_ = true;
    nanos_ = true;
  } else {
    return Status::ParseError("not a pcap file (bad magic)");
  }
  uint16_t major, minor;
  uint32_t zone, sigfigs;
  if (!ReadU16(file_, swap_, &major) || !ReadU16(file_, swap_, &minor) ||
      !ReadU32(file_, swap_, &zone) || !ReadU32(file_, swap_, &sigfigs) ||
      !ReadU32(file_, swap_, &snap_len_) ||
      !ReadU32(file_, swap_, &link_type_)) {
    return Status::ParseError("truncated pcap global header");
  }
  if (major != kVersionMajor) {
    return Status::ParseError("unsupported pcap version");
  }
  return Status::Ok();
}

Status PcapReader::Next(Packet* out, bool* eof) {
  if (file_ == nullptr) return Status::Internal("PcapReader not open");
  uint32_t secs;
  if (!ReadU32(file_, swap_, &secs)) {
    if (std::feof(file_)) {
      *eof = true;
      return Status::Ok();
    }
    return Status::ParseError("pcap record header read failed");
  }
  uint32_t subsecs, cap_len, orig_len;
  if (!ReadU32(file_, swap_, &subsecs) || !ReadU32(file_, swap_, &cap_len) ||
      !ReadU32(file_, swap_, &orig_len)) {
    return Status::ParseError("truncated pcap record header");
  }
  // Sanity-check capture length against the declared snap length so a
  // corrupt length field cannot force a huge allocation.
  if (snap_len_ != 0 && cap_len > snap_len_ && cap_len > 262144) {
    return Status::ParseError("pcap record capture length exceeds snaplen");
  }
  SimTime sub_nanos = nanos_ ? subsecs : static_cast<SimTime>(subsecs) * 1000;
  out->timestamp = static_cast<SimTime>(secs) * kNanosPerSecond + sub_nanos;
  out->orig_len = orig_len;
  out->bytes.resize(cap_len);
  if (cap_len > 0 &&
      std::fread(out->bytes.data(), 1, cap_len, file_) != cap_len) {
    return Status::ParseError("truncated pcap record body");
  }
  *eof = false;
  return Status::Ok();
}

Status PcapReader::Close() {
  if (file_ == nullptr) return Status::Ok();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::Internal("pcap close failed");
  return Status::Ok();
}

}  // namespace gigascope::net
