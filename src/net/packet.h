#ifndef GIGASCOPE_NET_PACKET_H_
#define GIGASCOPE_NET_PACKET_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"

namespace gigascope::net {

/// A captured packet: a capture timestamp plus raw bytes starting at the
/// Ethernet header. `orig_len` is the on-the-wire length; `bytes` may be a
/// shorter prefix when a snap length was applied (NIC truncation).
struct Packet {
  SimTime timestamp = 0;
  uint32_t orig_len = 0;
  ByteBuffer bytes;

  ByteSpan view() const { return ByteSpan(bytes.data(), bytes.size()); }
};

/// Truncates a packet's captured bytes to `snap_len`, preserving orig_len.
/// A snap_len of 0 means "no truncation".
void ApplySnapLen(Packet* packet, uint32_t snap_len);

}  // namespace gigascope::net

#endif  // GIGASCOPE_NET_PACKET_H_
