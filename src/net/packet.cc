#include "net/packet.h"

namespace gigascope::net {

void ApplySnapLen(Packet* packet, uint32_t snap_len) {
  if (snap_len == 0) return;
  if (packet->bytes.size() > snap_len) packet->bytes.resize(snap_len);
}

}  // namespace gigascope::net
