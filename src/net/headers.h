#ifndef GIGASCOPE_NET_HEADERS_H_
#define GIGASCOPE_NET_HEADERS_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "net/packet.h"

namespace gigascope::net {

// Wire-format constants.
constexpr uint16_t kEtherTypeIpv4 = 0x0800;
constexpr uint8_t kIpProtoTcp = 6;
constexpr uint8_t kIpProtoUdp = 17;
constexpr uint8_t kIpProtoIcmp = 1;
constexpr size_t kEthernetHeaderLen = 14;
constexpr size_t kIpv4MinHeaderLen = 20;
constexpr size_t kTcpMinHeaderLen = 20;
constexpr size_t kUdpHeaderLen = 8;

// TCP flag bits.
constexpr uint8_t kTcpFlagFin = 0x01;
constexpr uint8_t kTcpFlagSyn = 0x02;
constexpr uint8_t kTcpFlagRst = 0x04;
constexpr uint8_t kTcpFlagPsh = 0x08;
constexpr uint8_t kTcpFlagAck = 0x10;

/// Parsed Ethernet header.
struct EthernetHeader {
  std::array<uint8_t, 6> dst_mac{};
  std::array<uint8_t, 6> src_mac{};
  uint16_t ether_type = 0;
};

/// Parsed IPv4 header (options are skipped but counted in header_len).
struct Ipv4Header {
  uint8_t version = 4;
  uint8_t header_len = kIpv4MinHeaderLen;  // bytes, including options
  uint8_t tos = 0;
  uint16_t total_len = 0;
  uint16_t identification = 0;
  uint8_t flags = 0;          // bit 0: reserved, bit 1: DF, bit 2: MF
  uint16_t fragment_offset = 0;  // in 8-byte units
  uint8_t ttl = 64;
  uint8_t protocol = 0;
  uint16_t checksum = 0;
  uint32_t src_addr = 0;  // host byte order
  uint32_t dst_addr = 0;  // host byte order

  bool more_fragments() const { return (flags & 0x1) != 0; }
  bool dont_fragment() const { return (flags & 0x2) != 0; }
};

/// Parsed TCP header (options skipped but counted in header_len).
struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t header_len = kTcpMinHeaderLen;  // bytes
  uint8_t flags = 0;
  uint16_t window = 0;
  uint16_t checksum = 0;
  uint16_t urgent = 0;
};

/// Parsed UDP header.
struct UdpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t length = 0;
  uint16_t checksum = 0;
};

/// Fully decoded packet view produced by `DecodePacket`.
///
/// Optional layers are absent when the packet does not carry them or when
/// the capture was truncated before them. `payload` points into the source
/// packet's bytes; it does not own storage.
struct DecodedPacket {
  EthernetHeader eth;
  std::optional<Ipv4Header> ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  ByteSpan payload;  // application payload (after the deepest parsed layer)

  bool is_ipv4() const { return ip.has_value(); }
  bool is_tcp() const { return tcp.has_value(); }
  bool is_udp() const { return udp.has_value(); }
};

/// Computes the standard Internet checksum (RFC 1071) over `data`.
uint16_t InternetChecksum(ByteSpan data);

/// Decodes Ethernet/IPv4/TCP-or-UDP layers from raw packet bytes.
///
/// Returns an error only for packets malformed at the Ethernet layer; deeper
/// truncation simply leaves later layers unset, mirroring what a capture
/// stack does with snap-length-truncated packets.
Result<DecodedPacket> DecodePacket(ByteSpan bytes);

/// Builds raw packet bytes for a TCP segment.
///
/// `payload` may be empty. Checksums are filled in. Convenience for the
/// traffic generator and tests.
struct TcpPacketSpec {
  uint32_t src_addr = 0;
  uint32_t dst_addr = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = kTcpFlagAck;
  uint8_t ttl = 64;
  uint16_t ip_id = 0;
  std::string payload;
};

ByteBuffer BuildTcpPacket(const TcpPacketSpec& spec);

/// Builds raw packet bytes for a UDP datagram.
struct UdpPacketSpec {
  uint32_t src_addr = 0;
  uint32_t dst_addr = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t ttl = 64;
  uint16_t ip_id = 0;
  std::string payload;
};

ByteBuffer BuildUdpPacket(const UdpPacketSpec& spec);

/// Splits an Ethernet+IPv4 packet into IP fragments whose IP payloads are
/// at most `mtu_payload` bytes (must be a positive multiple of 8 except in
/// the last fragment). Each fragment carries the original IP header with
/// adjusted total length, fragment offset, MF flag, and checksum. Returns
/// the input unchanged (one element) when it already fits.
Result<std::vector<ByteBuffer>> FragmentIpv4Packet(const ByteBuffer& packet,
                                                   size_t mtu_payload);

}  // namespace gigascope::net

#endif  // GIGASCOPE_NET_HEADERS_H_
