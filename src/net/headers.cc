#include "net/headers.h"

#include <algorithm>

namespace gigascope::net {

namespace {

// Default MAC addresses used by the builders; the monitor never interprets
// MACs, it only needs a well-formed Ethernet frame.
constexpr std::array<uint8_t, 6> kDefaultSrcMac = {2, 0, 0, 0, 0, 1};
constexpr std::array<uint8_t, 6> kDefaultDstMac = {2, 0, 0, 0, 0, 2};

bool ParseEthernet(ByteReader& reader, EthernetHeader* out) {
  return reader.GetBytes(out->dst_mac.data(), 6) &&
         reader.GetBytes(out->src_mac.data(), 6) &&
         reader.GetU16Be(&out->ether_type);
}

bool ParseIpv4(ByteReader& reader, Ipv4Header* out) {
  uint8_t ver_ihl;
  if (!reader.GetU8(&ver_ihl)) return false;
  out->version = ver_ihl >> 4;
  out->header_len = static_cast<uint8_t>((ver_ihl & 0x0f) * 4);
  if (out->version != 4 || out->header_len < kIpv4MinHeaderLen) return false;
  uint16_t flags_frag;
  if (!reader.GetU8(&out->tos) || !reader.GetU16Be(&out->total_len) ||
      !reader.GetU16Be(&out->identification) ||
      !reader.GetU16Be(&flags_frag) || !reader.GetU8(&out->ttl) ||
      !reader.GetU8(&out->protocol) || !reader.GetU16Be(&out->checksum) ||
      !reader.GetU32Be(&out->src_addr) || !reader.GetU32Be(&out->dst_addr)) {
    return false;
  }
  out->flags = static_cast<uint8_t>(flags_frag >> 13);
  out->fragment_offset = static_cast<uint16_t>(flags_frag & 0x1fff);
  // Skip options.
  return reader.Skip(out->header_len - kIpv4MinHeaderLen);
}

bool ParseTcp(ByteReader& reader, TcpHeader* out) {
  uint8_t offset_reserved;
  if (!reader.GetU16Be(&out->src_port) || !reader.GetU16Be(&out->dst_port) ||
      !reader.GetU32Be(&out->seq) || !reader.GetU32Be(&out->ack) ||
      !reader.GetU8(&offset_reserved) || !reader.GetU8(&out->flags) ||
      !reader.GetU16Be(&out->window) || !reader.GetU16Be(&out->checksum) ||
      !reader.GetU16Be(&out->urgent)) {
    return false;
  }
  out->header_len = static_cast<uint8_t>((offset_reserved >> 4) * 4);
  if (out->header_len < kTcpMinHeaderLen) return false;
  return reader.Skip(out->header_len - kTcpMinHeaderLen);
}

bool ParseUdp(ByteReader& reader, UdpHeader* out) {
  return reader.GetU16Be(&out->src_port) && reader.GetU16Be(&out->dst_port) &&
         reader.GetU16Be(&out->length) && reader.GetU16Be(&out->checksum);
}

void WriteIpv4Header(ByteWriter& writer, const Ipv4Header& ip) {
  writer.PutU8(static_cast<uint8_t>(4 << 4 | (kIpv4MinHeaderLen / 4)));
  writer.PutU8(ip.tos);
  writer.PutU16Be(ip.total_len);
  writer.PutU16Be(ip.identification);
  writer.PutU16Be(static_cast<uint16_t>(ip.flags << 13 | ip.fragment_offset));
  writer.PutU8(ip.ttl);
  writer.PutU8(ip.protocol);
  writer.PutU16Be(ip.checksum);
  writer.PutU32Be(ip.src_addr);
  writer.PutU32Be(ip.dst_addr);
}

void WriteEthernetHeader(ByteWriter& writer) {
  writer.PutBytes(kDefaultDstMac.data(), 6);
  writer.PutBytes(kDefaultSrcMac.data(), 6);
  writer.PutU16Be(kEtherTypeIpv4);
}

// Fills in the IPv4 header checksum in a buffer where the IPv4 header
// starts at `ip_offset` and the checksum field was written as zero.
void PatchIpChecksum(ByteBuffer& bytes, size_t ip_offset) {
  ByteSpan header(bytes.data() + ip_offset, kIpv4MinHeaderLen);
  uint16_t sum = InternetChecksum(header);
  bytes[ip_offset + 10] = static_cast<uint8_t>(sum >> 8);
  bytes[ip_offset + 11] = static_cast<uint8_t>(sum);
}

}  // namespace

uint16_t InternetChecksum(ByteSpan data) {
  uint32_t sum = 0;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(~sum);
}

Result<DecodedPacket> DecodePacket(ByteSpan bytes) {
  DecodedPacket decoded;
  ByteReader reader(bytes);
  if (!ParseEthernet(reader, &decoded.eth)) {
    return Status::InvalidArgument("packet shorter than Ethernet header");
  }
  if (decoded.eth.ether_type != kEtherTypeIpv4) {
    decoded.payload = reader.Rest();
    return decoded;
  }
  Ipv4Header ip;
  if (!ParseIpv4(reader, &ip)) {
    // Truncated or malformed below Ethernet: stop at the Ethernet layer.
    decoded.payload = ByteSpan();
    return decoded;
  }
  decoded.ip = ip;
  // Non-first fragments have no transport header.
  if (ip.fragment_offset != 0) {
    decoded.payload = reader.Rest();
    return decoded;
  }
  if (ip.protocol == kIpProtoTcp) {
    TcpHeader tcp;
    if (ParseTcp(reader, &tcp)) {
      decoded.tcp = tcp;
      decoded.payload = reader.Rest();
    }
  } else if (ip.protocol == kIpProtoUdp) {
    UdpHeader udp;
    if (ParseUdp(reader, &udp)) {
      decoded.udp = udp;
      decoded.payload = reader.Rest();
    }
  } else {
    decoded.payload = reader.Rest();
  }
  return decoded;
}

ByteBuffer BuildTcpPacket(const TcpPacketSpec& spec) {
  ByteBuffer bytes;
  ByteWriter writer(&bytes);
  WriteEthernetHeader(writer);

  Ipv4Header ip;
  ip.total_len = static_cast<uint16_t>(kIpv4MinHeaderLen + kTcpMinHeaderLen +
                                       spec.payload.size());
  ip.identification = spec.ip_id;
  ip.ttl = spec.ttl;
  ip.protocol = kIpProtoTcp;
  ip.src_addr = spec.src_addr;
  ip.dst_addr = spec.dst_addr;
  WriteIpv4Header(writer, ip);

  writer.PutU16Be(spec.src_port);
  writer.PutU16Be(spec.dst_port);
  writer.PutU32Be(spec.seq);
  writer.PutU32Be(spec.ack);
  writer.PutU8(static_cast<uint8_t>((kTcpMinHeaderLen / 4) << 4));
  writer.PutU8(spec.flags);
  writer.PutU16Be(65535);  // window
  writer.PutU16Be(0);      // checksum: monitor-side, left zero at transport
  writer.PutU16Be(0);      // urgent
  writer.PutBytes(spec.payload.data(), spec.payload.size());

  PatchIpChecksum(bytes, kEthernetHeaderLen);
  return bytes;
}

ByteBuffer BuildUdpPacket(const UdpPacketSpec& spec) {
  ByteBuffer bytes;
  ByteWriter writer(&bytes);
  WriteEthernetHeader(writer);

  Ipv4Header ip;
  ip.total_len = static_cast<uint16_t>(kIpv4MinHeaderLen + kUdpHeaderLen +
                                       spec.payload.size());
  ip.identification = spec.ip_id;
  ip.ttl = spec.ttl;
  ip.protocol = kIpProtoUdp;
  ip.src_addr = spec.src_addr;
  ip.dst_addr = spec.dst_addr;
  WriteIpv4Header(writer, ip);

  writer.PutU16Be(spec.src_port);
  writer.PutU16Be(spec.dst_port);
  writer.PutU16Be(static_cast<uint16_t>(kUdpHeaderLen + spec.payload.size()));
  writer.PutU16Be(0);  // checksum optional in IPv4 UDP
  writer.PutBytes(spec.payload.data(), spec.payload.size());

  PatchIpChecksum(bytes, kEthernetHeaderLen);
  return bytes;
}

Result<std::vector<ByteBuffer>> FragmentIpv4Packet(const ByteBuffer& packet,
                                                   size_t mtu_payload) {
  if (mtu_payload == 0 || mtu_payload % 8 != 0) {
    return Status::InvalidArgument(
        "fragment payload size must be a positive multiple of 8");
  }
  auto decoded = DecodePacket(ByteSpan(packet.data(), packet.size()));
  if (!decoded.ok() || !decoded->is_ipv4()) {
    return Status::InvalidArgument("not an IPv4 packet");
  }
  const Ipv4Header& ip = *decoded->ip;
  if (ip.fragment_offset != 0 || ip.more_fragments()) {
    return Status::InvalidArgument("packet is already a fragment");
  }
  size_t ip_start = kEthernetHeaderLen;
  size_t payload_start = ip_start + ip.header_len;
  if (packet.size() < payload_start) {
    return Status::InvalidArgument("truncated IPv4 packet");
  }
  size_t payload_len = packet.size() - payload_start;
  std::vector<ByteBuffer> fragments;
  if (payload_len <= mtu_payload) {
    fragments.push_back(packet);
    return fragments;
  }

  for (size_t offset = 0; offset < payload_len; offset += mtu_payload) {
    size_t chunk = std::min(mtu_payload, payload_len - offset);
    bool more = offset + chunk < payload_len;
    ByteBuffer fragment(packet.begin(), packet.begin() +
                        static_cast<long>(payload_start));
    fragment.insert(fragment.end(),
                    packet.begin() + static_cast<long>(payload_start + offset),
                    packet.begin() +
                        static_cast<long>(payload_start + offset + chunk));
    // Patch total length.
    uint16_t total = static_cast<uint16_t>(ip.header_len + chunk);
    fragment[ip_start + 2] = static_cast<uint8_t>(total >> 8);
    fragment[ip_start + 3] = static_cast<uint8_t>(total);
    // Patch flags + fragment offset (in 8-byte units).
    uint16_t frag_field = static_cast<uint16_t>(offset / 8);
    if (more) frag_field |= 0x2000;  // MF is bit 13 of the 16-bit field
    fragment[ip_start + 6] = static_cast<uint8_t>(frag_field >> 8);
    fragment[ip_start + 7] = static_cast<uint8_t>(frag_field);
    // Recompute the header checksum.
    fragment[ip_start + 10] = 0;
    fragment[ip_start + 11] = 0;
    uint16_t checksum = InternetChecksum(
        ByteSpan(fragment.data() + ip_start, ip.header_len));
    fragment[ip_start + 10] = static_cast<uint8_t>(checksum >> 8);
    fragment[ip_start + 11] = static_cast<uint8_t>(checksum);
    fragments.push_back(std::move(fragment));
  }
  return fragments;
}

}  // namespace gigascope::net
