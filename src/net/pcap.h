#ifndef GIGASCOPE_NET_PCAP_H_
#define GIGASCOPE_NET_PCAP_H_

#include <cstdio>
#include <string>

#include "common/status.h"
#include "net/packet.h"

namespace gigascope::net {

/// Classic libpcap savefile magic (microsecond timestamps).
constexpr uint32_t kPcapMagic = 0xa1b2c3d4;
/// Nanosecond-resolution variant magic.
constexpr uint32_t kPcapMagicNanos = 0xa1b23c4d;
/// LINKTYPE_ETHERNET.
constexpr uint32_t kLinkTypeEthernet = 1;

/// Writes packets to a pcap savefile compatible with tcpdump/wireshark.
///
/// Implemented from scratch against the documented savefile layout; no
/// libpcap dependency. Always writes the nanosecond-magic variant so
/// simulated timestamps round-trip exactly.
class PcapWriter {
 public:
  PcapWriter() = default;
  ~PcapWriter();
  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Creates/truncates `path` and writes the global header.
  Status Open(const std::string& path, uint32_t snap_len = 65535);

  /// Appends one packet record.
  Status Write(const Packet& packet);

  /// Flushes and closes the file; further writes fail.
  Status Close();

  bool is_open() const { return file_ != nullptr; }
  uint64_t packets_written() const { return packets_written_; }

 private:
  std::FILE* file_ = nullptr;
  uint64_t packets_written_ = 0;
};

/// Reads packets back from a pcap savefile (either magic, either byte
/// order).
class PcapReader {
 public:
  PcapReader() = default;
  ~PcapReader();
  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;

  Status Open(const std::string& path);

  /// Reads the next record into `out`. Returns OK and sets `*eof=false` on
  /// success; OK with `*eof=true` at end of file; an error for corruption.
  Status Next(Packet* out, bool* eof);

  Status Close();

  uint32_t snap_len() const { return snap_len_; }
  uint32_t link_type() const { return link_type_; }

 private:
  std::FILE* file_ = nullptr;
  bool swap_ = false;   // file byte order differs from host
  bool nanos_ = false;  // nanosecond timestamp variant
  uint32_t snap_len_ = 0;
  uint32_t link_type_ = 0;
};

}  // namespace gigascope::net

#endif  // GIGASCOPE_NET_PCAP_H_
