#include "common/bytes.h"

#include <cstdio>

namespace gigascope {

void ByteWriter::PutU16Be(uint16_t v) {
  PutU8(static_cast<uint8_t>(v >> 8));
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutU32Be(uint32_t v) {
  PutU16Be(static_cast<uint16_t>(v >> 16));
  PutU16Be(static_cast<uint16_t>(v));
}

void ByteWriter::PutU16Le(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32Le(uint32_t v) {
  PutU16Le(static_cast<uint16_t>(v));
  PutU16Le(static_cast<uint16_t>(v >> 16));
}

void ByteWriter::PutU64Le(uint64_t v) {
  PutU32Le(static_cast<uint32_t>(v));
  PutU32Le(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::PutBytes(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out_->insert(out_->end(), p, p + len);
}

bool ByteReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = data_[pos_++];
  return true;
}

bool ByteReader::GetU16Be(uint16_t* v) {
  if (remaining() < 2) return false;
  *v = static_cast<uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return true;
}

bool ByteReader::GetU32Be(uint32_t* v) {
  if (remaining() < 4) return false;
  *v = static_cast<uint32_t>(data_[pos_]) << 24 |
       static_cast<uint32_t>(data_[pos_ + 1]) << 16 |
       static_cast<uint32_t>(data_[pos_ + 2]) << 8 |
       static_cast<uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return true;
}

bool ByteReader::GetU16Le(uint16_t* v) {
  if (remaining() < 2) return false;
  *v = static_cast<uint16_t>(data_[pos_] | data_[pos_ + 1] << 8);
  pos_ += 2;
  return true;
}

bool ByteReader::GetU32Le(uint32_t* v) {
  if (remaining() < 4) return false;
  *v = static_cast<uint32_t>(data_[pos_]) |
       static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
       static_cast<uint32_t>(data_[pos_ + 2]) << 16 |
       static_cast<uint32_t>(data_[pos_ + 3]) << 24;
  pos_ += 4;
  return true;
}

bool ByteReader::GetU64Le(uint64_t* v) {
  uint32_t lo, hi;
  size_t saved = pos_;
  if (!GetU32Le(&lo) || !GetU32Le(&hi)) {
    pos_ = saved;
    return false;
  }
  *v = static_cast<uint64_t>(hi) << 32 | lo;
  return true;
}

bool ByteReader::GetBytes(void* out, size_t len) {
  if (remaining() < len) return false;
  std::memcpy(out, data_.data() + pos_, len);
  pos_ += len;
  return true;
}

bool ByteReader::Skip(size_t len) {
  if (remaining() < len) return false;
  pos_ += len;
  return true;
}

std::string Ipv4ToString(uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

Result<uint32_t> ParseIpv4(std::string_view text) {
  uint32_t parts[4];
  int part = 0;
  uint64_t current = 0;
  bool have_digit = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<uint64_t>(c - '0');
      if (current > 255) {
        return Status::InvalidArgument("IPv4 octet out of range: " +
                                       std::string(text));
      }
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit || part >= 3) {
        return Status::InvalidArgument("malformed IPv4 address: " +
                                       std::string(text));
      }
      parts[part++] = static_cast<uint32_t>(current);
      current = 0;
      have_digit = false;
    } else {
      return Status::InvalidArgument("unexpected character in IPv4 address: " +
                                     std::string(text));
    }
  }
  if (!have_digit || part != 3) {
    return Status::InvalidArgument("malformed IPv4 address: " +
                                   std::string(text));
  }
  parts[3] = static_cast<uint32_t>(current);
  return parts[0] << 24 | parts[1] << 16 | parts[2] << 8 | parts[3];
}

uint64_t Fnv1a64(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace gigascope
