#ifndef GIGASCOPE_COMMON_LOGGING_H_
#define GIGASCOPE_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace gigascope {

/// Log severity levels, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

/// Minimum level that is actually emitted; set via SetLogLevel.
LogLevel MinLogLevel();

/// Emits one formatted log line to stderr (thread safe).
void EmitLogLine(LogLevel level, const char* file, int line,
                 const std::string& message);

/// Stream-style collector used by the GS_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() {
    if (level_ >= MinLogLevel()) EmitLogLine(level_, file_, line_, out_.str());
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream out_;
};

}  // namespace internal_logging

/// Raises the emission threshold; messages below `level` are dropped.
void SetLogLevel(LogLevel level);

#define GS_LOG(severity)                                             \
  ::gigascope::internal_logging::LogMessage(                         \
      ::gigascope::LogLevel::k##severity, __FILE__, __LINE__)

/// Fatal check macro: aborts with a message when `cond` is false. Used for
/// programmer errors (broken invariants), never for data-dependent failures.
#define GS_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::gigascope::internal_logging::EmitLogLine(                     \
          ::gigascope::LogLevel::kError, __FILE__, __LINE__,          \
          std::string("CHECK failed: ") + #cond);                     \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

}  // namespace gigascope

#endif  // GIGASCOPE_COMMON_LOGGING_H_
