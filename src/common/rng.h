#ifndef GIGASCOPE_COMMON_RNG_H_
#define GIGASCOPE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace gigascope {

/// Deterministic, fast pseudo-random generator (xoshiro256**).
///
/// All workload generation and simulation randomness flows through this
/// class so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  /// True with probability p.
  bool NextBool(double p);

  /// Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  /// Pareto distributed with shape `alpha` and minimum `xm`. Heavy-tailed;
  /// used for burst lengths (network traffic is "notoriously bursty").
  double NextPareto(double alpha, double xm);

 private:
  uint64_t state_[4];
};

/// Samples from a Zipf(s) distribution over {0, ..., n-1}.
///
/// Precomputes the CDF once; each sample is a binary search. Used to model
/// the flow-popularity skew that gives LFTA hash tables temporal locality.
class ZipfSampler {
 public:
  /// `n` ranks, exponent `s` (s=0 is uniform; larger s is more skewed).
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace gigascope

#endif  // GIGASCOPE_COMMON_RNG_H_
