#ifndef GIGASCOPE_COMMON_CLOCK_H_
#define GIGASCOPE_COMMON_CLOCK_H_

#include <cstdint>

namespace gigascope {

/// Simulated time, in nanoseconds since an arbitrary epoch.
using SimTime = int64_t;

constexpr SimTime kNanosPerMicro = 1000;
constexpr SimTime kNanosPerMilli = 1000 * 1000;
constexpr SimTime kNanosPerSecond = 1000 * 1000 * 1000;

/// Converts simulated nanoseconds to whole seconds (the granularity of the
/// GSQL `time` attribute, a 1-second timer per the paper).
constexpr int64_t SimTimeToSeconds(SimTime t) { return t / kNanosPerSecond; }

constexpr SimTime SecondsToSimTime(double seconds) {
  return static_cast<SimTime>(seconds * static_cast<double>(kNanosPerSecond));
}

/// A manually-advanced virtual clock.
///
/// All of the capture simulator and the RTS take time from a VirtualClock so
/// experiments are deterministic and decoupled from wall-clock speed.
class VirtualClock {
 public:
  VirtualClock() : now_(0) {}
  explicit VirtualClock(SimTime start) : now_(start) {}

  SimTime now() const { return now_; }

  /// Moves time forward; `delta` must be non-negative.
  void Advance(SimTime delta);

  /// Jumps to an absolute time not before the current time.
  void AdvanceTo(SimTime t);

 private:
  SimTime now_;
};

}  // namespace gigascope

#endif  // GIGASCOPE_COMMON_CLOCK_H_
