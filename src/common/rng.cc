#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gigascope {

namespace {

// splitmix64, used to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling; bias is negligible for
  // the ranges used here, and determinism is what matters.
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(Next()) * n) >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + NextBelow(hi - lo + 1);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextPareto(double alpha, double xm) {
  assert(alpha > 0 && xm > 0);
  double u = NextDouble();
  if (u <= 0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

ZipfSampler::ZipfSampler(uint64_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace gigascope
