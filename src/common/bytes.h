#ifndef GIGASCOPE_COMMON_BYTES_H_
#define GIGASCOPE_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gigascope {

/// Non-owning view of a byte buffer (packet payloads, tuple bodies).
using ByteSpan = std::basic_string_view<uint8_t>;

/// Owning byte buffer.
using ByteBuffer = std::vector<uint8_t>;

/// Serializes fixed-width integers into a growing buffer.
///
/// Network header fields are written big-endian (wire order); tuple fields
/// are written little-endian (host order on all supported platforms).
class ByteWriter {
 public:
  explicit ByteWriter(ByteBuffer* out) : out_(out) {}
  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16Be(uint16_t v);
  void PutU32Be(uint32_t v);
  void PutU16Le(uint16_t v);
  void PutU32Le(uint32_t v);
  void PutU64Le(uint64_t v);
  void PutBytes(const void* data, size_t len);

  size_t size() const { return out_->size(); }

 private:
  ByteBuffer* out_;
};

/// Deserializes fixed-width integers from a byte view, with bounds checks.
///
/// All getters return false (leaving the output untouched) when fewer bytes
/// remain than requested; callers treat that as a truncated packet.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data), pos_(0) {}

  bool GetU8(uint8_t* v);
  bool GetU16Be(uint16_t* v);
  bool GetU32Be(uint32_t* v);
  bool GetU16Le(uint16_t* v);
  bool GetU32Le(uint32_t* v);
  bool GetU64Le(uint64_t* v);
  bool GetBytes(void* out, size_t len);
  bool Skip(size_t len);

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  /// View of the unread suffix.
  ByteSpan Rest() const { return data_.substr(pos_); }

 private:
  ByteSpan data_;
  size_t pos_;
};

/// Formats an IPv4 address (host byte order) as dotted quad.
std::string Ipv4ToString(uint32_t addr);

/// Parses a dotted-quad IPv4 address into host byte order.
Result<uint32_t> ParseIpv4(std::string_view text);

/// FNV-1a 64-bit hash over a byte range; the RTS group-hash primitive.
uint64_t Fnv1a64(const void* data, size_t len);

}  // namespace gigascope

#endif  // GIGASCOPE_COMMON_BYTES_H_
