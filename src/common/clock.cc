#include "common/clock.h"

#include "common/logging.h"

namespace gigascope {

void VirtualClock::Advance(SimTime delta) {
  GS_CHECK(delta >= 0);
  now_ += delta;
}

void VirtualClock::AdvanceTo(SimTime t) {
  GS_CHECK(t >= now_);
  now_ = t;
}

}  // namespace gigascope
