#ifndef GIGASCOPE_COMMON_STATUS_H_
#define GIGASCOPE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gigascope {

/// Result status of an operation that can fail.
///
/// Gigascope does not use exceptions; fallible functions return `Status`
/// (or `Result<T>` when they also produce a value). Statuses carry an error
/// code and a human-readable message describing the failure.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kUnimplemented,
    kInternal,
    kResourceExhausted,
    kFailedPrecondition,
    kParseError,
    kTypeError,
    kPlanError,
  };

  /// Default status is OK.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(Code::kTypeError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(Code::kPlanError, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Code name + message, e.g. "InvalidArgument: bad field".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Like absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` and `return SomeStatus;` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define GS_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::gigascope::Status _gs_status = (expr);      \
    if (!_gs_status.ok()) return _gs_status;      \
  } while (0)

/// Evaluates a Result-returning expression; on error propagates the status,
/// otherwise assigns the value to `lhs`.
#define GS_ASSIGN_OR_RETURN(lhs, expr)             \
  auto GS_CONCAT_(_gs_result, __LINE__) = (expr);  \
  if (!GS_CONCAT_(_gs_result, __LINE__).ok())      \
    return GS_CONCAT_(_gs_result, __LINE__).status(); \
  lhs = std::move(GS_CONCAT_(_gs_result, __LINE__)).value()

#define GS_CONCAT_INNER_(a, b) a##b
#define GS_CONCAT_(a, b) GS_CONCAT_INNER_(a, b)

}  // namespace gigascope

#endif  // GIGASCOPE_COMMON_STATUS_H_
