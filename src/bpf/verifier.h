#ifndef GIGASCOPE_BPF_VERIFIER_H_
#define GIGASCOPE_BPF_VERIFIER_H_

#include "bpf/program.h"
#include "common/status.h"

namespace gigascope::bpf {

/// Statically validates a program before it is "loaded into the NIC".
///
/// Guarantees termination and memory safety for any packet:
///  - the program is non-empty and no longer than kMaxProgramLength;
///  - every jump target lands inside the program (jumps are forward-only by
///    construction of the displacement encoding, so there are no loops);
///  - every path ends in a RET (no falling off the end);
///  - no division by a zero immediate.
Status Verify(const Program& program);

constexpr size_t kMaxProgramLength = 4096;

}  // namespace gigascope::bpf

#endif  // GIGASCOPE_BPF_VERIFIER_H_
