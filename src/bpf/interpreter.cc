#include "bpf/interpreter.h"

namespace gigascope::bpf {

namespace {

bool LoadByte(ByteSpan pkt, uint64_t off, uint32_t* out) {
  if (off >= pkt.size()) return false;
  *out = pkt[off];
  return true;
}

bool LoadHalf(ByteSpan pkt, uint64_t off, uint32_t* out) {
  if (off + 2 > pkt.size()) return false;
  *out = static_cast<uint32_t>(pkt[off]) << 8 | pkt[off + 1];
  return true;
}

bool LoadWord(ByteSpan pkt, uint64_t off, uint32_t* out) {
  if (off + 4 > pkt.size()) return false;
  *out = static_cast<uint32_t>(pkt[off]) << 24 |
         static_cast<uint32_t>(pkt[off + 1]) << 16 |
         static_cast<uint32_t>(pkt[off + 2]) << 8 | pkt[off + 3];
  return true;
}

}  // namespace

uint32_t Run(const Program& program, ByteSpan packet) {
  uint32_t a = 0;
  uint32_t x = 0;
  size_t pc = 0;
  const auto& code = program.instructions;

  while (pc < code.size()) {
    const Instruction& inst = code[pc];
    ++pc;
    switch (inst.op) {
      case OpCode::kLdByteAbs:
        if (!LoadByte(packet, inst.k, &a)) return 0;
        break;
      case OpCode::kLdHalfAbs:
        if (!LoadHalf(packet, inst.k, &a)) return 0;
        break;
      case OpCode::kLdWordAbs:
        if (!LoadWord(packet, inst.k, &a)) return 0;
        break;
      case OpCode::kLdByteInd:
        if (!LoadByte(packet, static_cast<uint64_t>(x) + inst.k, &a)) return 0;
        break;
      case OpCode::kLdHalfInd:
        if (!LoadHalf(packet, static_cast<uint64_t>(x) + inst.k, &a)) return 0;
        break;
      case OpCode::kLdWordInd:
        if (!LoadWord(packet, static_cast<uint64_t>(x) + inst.k, &a)) return 0;
        break;
      case OpCode::kLdLen:
        a = static_cast<uint32_t>(packet.size());
        break;
      case OpCode::kLdImm:
        a = inst.k;
        break;
      case OpCode::kLdxImm:
        x = inst.k;
        break;
      case OpCode::kLdxMshIp: {
        uint32_t byte;
        if (!LoadByte(packet, inst.k, &byte)) return 0;
        x = (byte & 0x0f) * 4;
        break;
      }
      case OpCode::kTax:
        x = a;
        break;
      case OpCode::kTxa:
        a = x;
        break;
      case OpCode::kAdd:
        a += inst.k;
        break;
      case OpCode::kSub:
        a -= inst.k;
        break;
      case OpCode::kMul:
        a *= inst.k;
        break;
      case OpCode::kDiv:
        // Verifier rejects k==0; guard anyway.
        if (inst.k == 0) return 0;
        a /= inst.k;
        break;
      case OpCode::kAnd:
        a &= inst.k;
        break;
      case OpCode::kOr:
        a |= inst.k;
        break;
      case OpCode::kLsh:
        a = (inst.k < 32) ? a << inst.k : 0;
        break;
      case OpCode::kRsh:
        a = (inst.k < 32) ? a >> inst.k : 0;
        break;
      case OpCode::kAddX:
        a += x;
        break;
      case OpCode::kSubX:
        a -= x;
        break;
      case OpCode::kAndX:
        a &= x;
        break;
      case OpCode::kOrX:
        a |= x;
        break;
      case OpCode::kJEq:
        pc += (a == inst.k) ? inst.jt : inst.jf;
        break;
      case OpCode::kJGt:
        pc += (a > inst.k) ? inst.jt : inst.jf;
        break;
      case OpCode::kJGe:
        pc += (a >= inst.k) ? inst.jt : inst.jf;
        break;
      case OpCode::kJSet:
        pc += ((a & inst.k) != 0) ? inst.jt : inst.jf;
        break;
      case OpCode::kJEqX:
        pc += (a == x) ? inst.jt : inst.jf;
        break;
      case OpCode::kJmp:
        pc += inst.k;
        break;
      case OpCode::kRet:
        return inst.k;
      case OpCode::kRetA:
        return a;
    }
  }
  // Fell off the end: drop.
  return 0;
}

bool Matches(const Program& program, ByteSpan packet) {
  return Run(program, packet) != 0;
}

}  // namespace gigascope::bpf
