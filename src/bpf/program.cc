#include "bpf/program.h"

#include <cstdio>

#include "net/headers.h"

namespace gigascope::bpf {

namespace {

const char* OpName(OpCode op) {
  switch (op) {
    case OpCode::kLdByteAbs: return "ldb";
    case OpCode::kLdHalfAbs: return "ldh";
    case OpCode::kLdWordAbs: return "ld";
    case OpCode::kLdByteInd: return "ldb[x]";
    case OpCode::kLdHalfInd: return "ldh[x]";
    case OpCode::kLdWordInd: return "ld[x]";
    case OpCode::kLdLen: return "ldlen";
    case OpCode::kLdImm: return "ldi";
    case OpCode::kLdxImm: return "ldxi";
    case OpCode::kLdxMshIp: return "ldxmsh";
    case OpCode::kTax: return "tax";
    case OpCode::kTxa: return "txa";
    case OpCode::kAdd: return "add";
    case OpCode::kSub: return "sub";
    case OpCode::kMul: return "mul";
    case OpCode::kDiv: return "div";
    case OpCode::kAnd: return "and";
    case OpCode::kOr: return "or";
    case OpCode::kLsh: return "lsh";
    case OpCode::kRsh: return "rsh";
    case OpCode::kAddX: return "addx";
    case OpCode::kSubX: return "subx";
    case OpCode::kAndX: return "andx";
    case OpCode::kOrX: return "orx";
    case OpCode::kJEq: return "jeq";
    case OpCode::kJGt: return "jgt";
    case OpCode::kJGe: return "jge";
    case OpCode::kJSet: return "jset";
    case OpCode::kJEqX: return "jeqx";
    case OpCode::kJmp: return "jmp";
    case OpCode::kRet: return "ret";
    case OpCode::kRetA: return "reta";
  }
  return "?";
}

Instruction Make(OpCode op, uint32_t k = 0, uint8_t jt = 0, uint8_t jf = 0) {
  Instruction inst;
  inst.op = op;
  inst.k = k;
  inst.jt = jt;
  inst.jf = jf;
  return inst;
}

}  // namespace

std::string Program::ToString() const {
  std::string out;
  char line[96];
  for (size_t i = 0; i < instructions.size(); ++i) {
    const Instruction& inst = instructions[i];
    std::snprintf(line, sizeof(line), "%3zu: %-7s k=%-10u jt=%u jf=%u\n", i,
                  OpName(inst.op), inst.k, inst.jt, inst.jf);
    out += line;
  }
  return out;
}

Instruction LdByteAbs(uint32_t k) { return Make(OpCode::kLdByteAbs, k); }
Instruction LdHalfAbs(uint32_t k) { return Make(OpCode::kLdHalfAbs, k); }
Instruction LdWordAbs(uint32_t k) { return Make(OpCode::kLdWordAbs, k); }
Instruction LdByteInd(uint32_t k) { return Make(OpCode::kLdByteInd, k); }
Instruction LdHalfInd(uint32_t k) { return Make(OpCode::kLdHalfInd, k); }
Instruction LdWordInd(uint32_t k) { return Make(OpCode::kLdWordInd, k); }
Instruction LdLen() { return Make(OpCode::kLdLen); }
Instruction LdImm(uint32_t k) { return Make(OpCode::kLdImm, k); }
Instruction LdxImm(uint32_t k) { return Make(OpCode::kLdxImm, k); }
Instruction LdxMshIp(uint32_t k) { return Make(OpCode::kLdxMshIp, k); }
Instruction Tax() { return Make(OpCode::kTax); }
Instruction Txa() { return Make(OpCode::kTxa); }
Instruction Alu(OpCode op, uint32_t k) { return Make(op, k); }
Instruction JEq(uint32_t k, uint8_t jt, uint8_t jf) {
  return Make(OpCode::kJEq, k, jt, jf);
}
Instruction JGt(uint32_t k, uint8_t jt, uint8_t jf) {
  return Make(OpCode::kJGt, k, jt, jf);
}
Instruction JGe(uint32_t k, uint8_t jt, uint8_t jf) {
  return Make(OpCode::kJGe, k, jt, jf);
}
Instruction JSet(uint32_t k, uint8_t jt, uint8_t jf) {
  return Make(OpCode::kJSet, k, jt, jf);
}
Instruction Jmp(uint32_t k) { return Make(OpCode::kJmp, k); }
Instruction Ret(uint32_t k) { return Make(OpCode::kRet, k); }
Instruction RetA() { return Make(OpCode::kRetA); }

Program BuildTcpDstPortFilter(uint16_t port, uint32_t snap_len) {
  // Offsets: ethertype at 12; IP proto at 23; frag field at 20;
  // TCP dst port at 14 + ip_header_len + 2.
  Program program;
  auto& code = program.instructions;
  code.push_back(LdHalfAbs(12));
  code.push_back(JEq(net::kEtherTypeIpv4, 0, 8));        // not IPv4 -> drop
  code.push_back(LdByteAbs(23));
  code.push_back(JEq(net::kIpProtoTcp, 0, 6));           // not TCP -> drop
  code.push_back(LdHalfAbs(20));
  code.push_back(JSet(0x1fff, 4, 0));                    // frag offset != 0 -> drop
  code.push_back(LdxMshIp(14));                          // X = IP header len
  code.push_back(LdHalfInd(14 + 2));                     // A = dst port
  code.push_back(JEq(port, 0, 1));
  code.push_back(Ret(snap_len == 0 ? 0xffffffff : snap_len));
  code.push_back(Ret(0));
  return program;
}

Program BuildIpProtoFilter(uint8_t proto, uint32_t snap_len) {
  Program program;
  auto& code = program.instructions;
  code.push_back(LdHalfAbs(12));
  code.push_back(JEq(net::kEtherTypeIpv4, 0, 3));
  code.push_back(LdByteAbs(23));
  code.push_back(JEq(proto, 0, 1));
  code.push_back(Ret(snap_len == 0 ? 0xffffffff : snap_len));
  code.push_back(Ret(0));
  return program;
}

Program BuildAcceptAll(uint32_t snap_len) {
  Program program;
  program.instructions.push_back(
      Ret(snap_len == 0 ? 0xffffffff : snap_len));
  return program;
}

}  // namespace gigascope::bpf
