#ifndef GIGASCOPE_BPF_PROGRAM_H_
#define GIGASCOPE_BPF_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace gigascope::bpf {

/// Instruction opcodes for the Gigascope mini-BPF virtual machine.
///
/// This is a from-scratch filter machine in the style of classic BSD BPF:
/// an accumulator `A`, an index register `X`, absolute/indirect packet
/// loads, forward-only conditional jumps, and a RET that yields the number
/// of bytes to keep (0 = drop the packet). The planner compiles NIC-pushable
/// GSQL predicates to this instruction set (see plan/splitter).
enum class OpCode : uint8_t {
  // Loads into A. `k` is the absolute packet offset.
  kLdByteAbs,   // A = pkt[k]
  kLdHalfAbs,   // A = be16(pkt[k..k+1])
  kLdWordAbs,   // A = be32(pkt[k..k+3])
  kLdByteInd,   // A = pkt[X + k]
  kLdHalfInd,   // A = be16(pkt[X+k ..])
  kLdWordInd,   // A = be32(pkt[X+k ..])
  kLdLen,       // A = packet length
  kLdImm,       // A = k

  // Loads into X.
  kLdxImm,      // X = k
  kLdxMshIp,    // X = 4 * (pkt[k] & 0x0f)  -- IP header length idiom
  kTax,         // X = A
  kTxa,         // A = X

  // ALU on A (operand is k, or X for the ...X forms).
  kAdd, kSub, kMul, kDiv, kAnd, kOr, kLsh, kRsh,
  kAddX, kSubX, kAndX, kOrX,

  // Conditional jumps: if (A op k) pc += jt else pc += jf. Forward only.
  kJEq, kJGt, kJGe, kJSet,
  kJEqX,

  // Unconditional jump: pc += k.
  kJmp,

  // Return: accept k bytes of the packet (0 = drop). kRetA returns A.
  kRet, kRetA,
};

/// One mini-BPF instruction.
struct Instruction {
  OpCode op;
  uint8_t jt = 0;  // jump-if-true displacement
  uint8_t jf = 0;  // jump-if-false displacement
  uint32_t k = 0;  // immediate / offset operand
};

/// A filter program: a flat instruction vector executed from index 0.
struct Program {
  std::vector<Instruction> instructions;

  size_t size() const { return instructions.size(); }
  std::string ToString() const;
};

/// Convenience constructors (the "assembler").
Instruction LdByteAbs(uint32_t k);
Instruction LdHalfAbs(uint32_t k);
Instruction LdWordAbs(uint32_t k);
Instruction LdByteInd(uint32_t k);
Instruction LdHalfInd(uint32_t k);
Instruction LdWordInd(uint32_t k);
Instruction LdLen();
Instruction LdImm(uint32_t k);
Instruction LdxImm(uint32_t k);
Instruction LdxMshIp(uint32_t k);
Instruction Tax();
Instruction Txa();
Instruction Alu(OpCode op, uint32_t k);
Instruction JEq(uint32_t k, uint8_t jt, uint8_t jf);
Instruction JGt(uint32_t k, uint8_t jt, uint8_t jf);
Instruction JGe(uint32_t k, uint8_t jt, uint8_t jf);
Instruction JSet(uint32_t k, uint8_t jt, uint8_t jf);
Instruction Jmp(uint32_t k);
Instruction Ret(uint32_t k);
Instruction RetA();

/// Builds the classic "tcp dst port P" filter over Ethernet/IPv4, the
/// workhorse NIC pre-filter for LFTA pushdown. Accepts `snap_len` bytes of
/// matching packets (0 = whole packet).
Program BuildTcpDstPortFilter(uint16_t port, uint32_t snap_len);

/// Builds an "IPv4 protocol == proto" filter.
Program BuildIpProtoFilter(uint8_t proto, uint32_t snap_len);

/// Builds an accept-everything program (used when no predicate is pushed).
Program BuildAcceptAll(uint32_t snap_len);

}  // namespace gigascope::bpf

#endif  // GIGASCOPE_BPF_PROGRAM_H_
