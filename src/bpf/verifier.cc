#include "bpf/verifier.h"

#include <string>

namespace gigascope::bpf {

namespace {

bool IsJump(OpCode op) {
  return op == OpCode::kJEq || op == OpCode::kJGt || op == OpCode::kJGe ||
         op == OpCode::kJSet || op == OpCode::kJEqX || op == OpCode::kJmp;
}

bool IsRet(OpCode op) { return op == OpCode::kRet || op == OpCode::kRetA; }

}  // namespace

Status Verify(const Program& program) {
  const auto& code = program.instructions;
  if (code.empty()) {
    return Status::InvalidArgument("bpf: empty program");
  }
  if (code.size() > kMaxProgramLength) {
    return Status::InvalidArgument("bpf: program too long");
  }
  for (size_t i = 0; i < code.size(); ++i) {
    const Instruction& inst = code[i];
    if (IsJump(inst.op)) {
      size_t base = i + 1;
      if (inst.op == OpCode::kJmp) {
        if (base + inst.k >= code.size()) {
          return Status::InvalidArgument(
              "bpf: jmp target out of range at instruction " +
              std::to_string(i));
        }
      } else {
        if (base + inst.jt >= code.size()) {
          return Status::InvalidArgument(
              "bpf: true-branch target out of range at instruction " +
              std::to_string(i));
        }
        if (base + inst.jf >= code.size()) {
          return Status::InvalidArgument(
              "bpf: false-branch target out of range at instruction " +
              std::to_string(i));
        }
      }
    }
    if (inst.op == OpCode::kDiv && inst.k == 0) {
      return Status::InvalidArgument(
          "bpf: division by zero immediate at instruction " +
          std::to_string(i));
    }
  }
  // Every non-jump, non-ret instruction must not be the last one, and the
  // final reachable instruction on straight-line fallthrough must be a RET.
  // Because displacements are unsigned (forward-only), checking that the
  // last instruction is a RET suffices to prove no path falls off the end:
  // any non-RET path strictly advances pc and ends at the last instruction.
  if (!IsRet(code.back().op)) {
    return Status::InvalidArgument("bpf: program does not end in RET");
  }
  return Status::Ok();
}

}  // namespace gigascope::bpf
