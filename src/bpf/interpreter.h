#ifndef GIGASCOPE_BPF_INTERPRETER_H_
#define GIGASCOPE_BPF_INTERPRETER_H_

#include <cstdint>

#include "bpf/program.h"
#include "common/bytes.h"

namespace gigascope::bpf {

/// Runs a (verified) program against one packet.
///
/// Returns the number of bytes to keep: 0 means drop, 0xffffffff means the
/// whole packet. Out-of-bounds packet loads terminate the program with a
/// drop (0), matching the BSD BPF behaviour for short packets. A program
/// that falls off the end also drops.
uint32_t Run(const Program& program, ByteSpan packet);

/// Convenience: true iff Run(...) returns nonzero.
bool Matches(const Program& program, ByteSpan packet);

}  // namespace gigascope::bpf

#endif  // GIGASCOPE_BPF_INTERPRETER_H_
