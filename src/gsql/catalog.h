#ifndef GIGASCOPE_GSQL_CATALOG_H_
#define GIGASCOPE_GSQL_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "gsql/schema.h"

namespace gigascope::gsql {

/// The schema catalog: Protocol definitions (packet interpretations) and
/// Stream schemas (query outputs), plus the known Interfaces that Protocols
/// can be bound to (§2.2's Interface.Protocol mechanism).
class Catalog {
 public:
  Catalog() = default;

  /// Registers a schema; fails on duplicate names.
  Status AddSchema(StreamSchema schema);

  /// Registers or replaces a Stream schema for a query output. Query
  /// outputs are re-registered when queries are recompiled.
  void PutStreamSchema(StreamSchema schema);

  /// Looks up a schema by name.
  Result<StreamSchema> GetSchema(const std::string& name) const;

  bool HasSchema(const std::string& name) const;

  /// Declares an interface name (e.g. "eth0"); idempotent.
  void AddInterface(const std::string& name);

  bool HasInterface(const std::string& name) const;

  /// Name of the default interface bound when a Protocol is referenced
  /// without qualification. Empty until an interface is added; the first
  /// added interface becomes the default.
  const std::string& default_interface() const { return default_interface_; }

  std::vector<std::string> SchemaNames() const;

  /// Installs the built-in PKT protocol schema (decoded packet fields) and
  /// returns its name. Fields:
  ///   time UINT INCREASING        -- 1-second granularity timer (§2.2)
  ///   timestamp UINT STRICTLY INCREASING  -- capture time, nanoseconds
  ///   srcIP IP, destIP IP, srcPort UINT, destPort UINT,
  ///   protocol UINT, ipVersion UINT, len UINT, tcpFlags UINT,
  ///   tcpSeq UINT, payload STRING
  static StreamSchema BuiltinPacketSchema();

  /// Installs a Netflow-record style protocol schema (per §2.1's example):
  ///   endTime UINT INCREASING, startTime UINT BANDED INCREASING(30),
  ///   srcIP IP, destIP IP, srcPort UINT, destPort UINT, protocol UINT,
  ///   packets UINT, bytes UINT
  static StreamSchema BuiltinNetflowSchema();

  /// The engine's self-telemetry stream (§4: the RTS keeps per-node
  /// statistics and Gigascope monitors itself with queries over them).
  /// One tuple per (entity, metric) per snapshot:
  ///   time UINT INCREASING   -- snapshot time, 1-second granularity
  ///   ts UINT INCREASING     -- snapshot time, nanoseconds
  ///   node STRING            -- owning entity (query node, source, channel)
  ///   metric STRING          -- counter name (tuples_in, ring_dropped, ...)
  ///   value UINT             -- aggregated (cross-process folded) reading
  ///   proc STRING            -- owning process ("rts", or worker "w0"...)
  static StreamSchema BuiltinStatsSchema();

  /// Name of the built-in self-telemetry stream ("gs_stats").
  static const char* StatsStreamName();

 private:
  std::map<std::string, StreamSchema> schemas_;
  std::map<std::string, bool> interfaces_;
  std::string default_interface_;
};

}  // namespace gigascope::gsql

#endif  // GIGASCOPE_GSQL_CATALOG_H_
