#include "gsql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "common/bytes.h"

namespace gigascope::gsql {

namespace {

std::string ToLower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) out += static_cast<char>(std::tolower(c));
  return out;
}

const std::unordered_map<std::string, TokenKind>& KeywordTable() {
  static const auto* table = new std::unordered_map<std::string, TokenKind>{
      {"select", TokenKind::kSelect},
      {"from", TokenKind::kFrom},
      {"where", TokenKind::kWhere},
      {"group", TokenKind::kGroup},
      {"by", TokenKind::kBy},
      {"as", TokenKind::kAs},
      {"and", TokenKind::kAnd},
      {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},
      {"merge", TokenKind::kMerge},
      {"define", TokenKind::kDefine},
      {"create", TokenKind::kCreate},
      {"protocol", TokenKind::kProtocol},
      {"stream", TokenKind::kStream},
      {"having", TokenKind::kHaving},
      {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},
      {"increasing", TokenKind::kIncreasing},
      {"decreasing", TokenKind::kDecreasing},
      {"strictly", TokenKind::kStrictly},
      {"nonrepeating", TokenKind::kNonrepeating},
      {"banded", TokenKind::kBanded},
      {"in", TokenKind::kIn},
  };
  return *table;
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      GS_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      Token token;
      token.line = line_;
      token.column = column_;
      if (AtEnd()) {
        token.kind = TokenKind::kEof;
        tokens.push_back(token);
        return tokens;
      }
      GS_RETURN_IF_ERROR(Next(&token));
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(column_));
  }

  Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && Peek(1) == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
        if (AtEnd()) return Error("unterminated block comment");
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::Ok();
  }

  Status Next(Token* token) {
    char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdentifier(token);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber(token);
    }
    if (c == '\'') return LexString(token);
    if (c == '$') return LexParam(token);
    return LexOperator(token);
  }

  Status LexIdentifier(Token* token) {
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      Advance();
    }
    token->text = std::string(source_.substr(start, pos_ - start));
    auto it = KeywordTable().find(ToLower(token->text));
    token->kind =
        it != KeywordTable().end() ? it->second : TokenKind::kIdentifier;
    return Status::Ok();
  }

  Status LexNumber(Token* token) {
    size_t start = pos_;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    // Dotted quad? Requires exactly three more .digits groups.
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      size_t lookahead = pos_;
      int groups = 1;
      while (lookahead < source_.size() && source_[lookahead] == '.' &&
             lookahead + 1 < source_.size() &&
             std::isdigit(static_cast<unsigned char>(source_[lookahead + 1]))) {
        ++groups;
        ++lookahead;
        while (lookahead < source_.size() &&
               std::isdigit(static_cast<unsigned char>(source_[lookahead]))) {
          ++lookahead;
        }
      }
      if (groups == 4) {
        while (pos_ < lookahead) Advance();
        token->text = std::string(source_.substr(start, pos_ - start));
        auto ip = ParseIpv4(token->text);
        if (!ip.ok()) return Error("invalid IPv4 literal '" + token->text + "'");
        token->kind = TokenKind::kIpLiteral;
        token->ip_value = *ip;
        return Status::Ok();
      }
      if (groups == 2) {
        // A float: consume the fraction.
        Advance();  // '.'
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          Advance();
        }
        token->text = std::string(source_.substr(start, pos_ - start));
        token->kind = TokenKind::kFloatLiteral;
        token->float_value = std::strtod(token->text.c_str(), nullptr);
        return Status::Ok();
      }
      return Error("malformed numeric literal");
    }
    token->text = std::string(source_.substr(start, pos_ - start));
    token->kind = TokenKind::kIntLiteral;
    token->int_value = std::strtoll(token->text.c_str(), nullptr, 10);
    return Status::Ok();
  }

  Status LexString(Token* token) {
    Advance();  // opening quote
    std::string body;
    while (true) {
      if (AtEnd()) return Error("unterminated string literal");
      char c = Advance();
      if (c == '\'') {
        if (Peek() == '\'') {  // '' escape
          body += '\'';
          Advance();
        } else {
          break;
        }
      } else {
        body += c;
      }
    }
    token->kind = TokenKind::kStringLiteral;
    token->text = std::move(body);
    return Status::Ok();
  }

  Status LexParam(Token* token) {
    Advance();  // '$'
    if (!(std::isalpha(static_cast<unsigned char>(Peek())) || Peek() == '_')) {
      return Error("expected parameter name after '$'");
    }
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      Advance();
    }
    token->kind = TokenKind::kParam;
    token->text = std::string(source_.substr(start, pos_ - start));
    return Status::Ok();
  }

  Status LexOperator(Token* token) {
    char c = Advance();
    switch (c) {
      case '(': token->kind = TokenKind::kLParen; return Status::Ok();
      case ')': token->kind = TokenKind::kRParen; return Status::Ok();
      case '{': token->kind = TokenKind::kLBrace; return Status::Ok();
      case '}': token->kind = TokenKind::kRBrace; return Status::Ok();
      case ',': token->kind = TokenKind::kComma; return Status::Ok();
      case ';': token->kind = TokenKind::kSemicolon; return Status::Ok();
      case '.': token->kind = TokenKind::kDot; return Status::Ok();
      case ':': token->kind = TokenKind::kColon; return Status::Ok();
      case '=': token->kind = TokenKind::kEq; return Status::Ok();
      case '+': token->kind = TokenKind::kPlus; return Status::Ok();
      case '-': token->kind = TokenKind::kMinus; return Status::Ok();
      case '*': token->kind = TokenKind::kStar; return Status::Ok();
      case '/': token->kind = TokenKind::kSlash; return Status::Ok();
      case '%': token->kind = TokenKind::kPercent; return Status::Ok();
      case '&': token->kind = TokenKind::kAmp; return Status::Ok();
      case '|': token->kind = TokenKind::kPipe; return Status::Ok();
      case '<':
        if (Peek() == '=') {
          Advance();
          token->kind = TokenKind::kLe;
        } else if (Peek() == '>') {
          Advance();
          token->kind = TokenKind::kNeq;
        } else {
          token->kind = TokenKind::kLt;
        }
        return Status::Ok();
      case '>':
        if (Peek() == '=') {
          Advance();
          token->kind = TokenKind::kGe;
        } else {
          token->kind = TokenKind::kGt;
        }
        return Status::Ok();
      case '!':
        if (Peek() == '=') {
          Advance();
          token->kind = TokenKind::kNeq;
          return Status::Ok();
        }
        return Error("unexpected character '!'");
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  Lexer lexer(source);
  return lexer.Run();
}

}  // namespace gigascope::gsql
