#ifndef GIGASCOPE_GSQL_TOKEN_H_
#define GIGASCOPE_GSQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace gigascope::gsql {

/// Lexical token kinds for GSQL (queries and DDL).
enum class TokenKind {
  kEof,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kIpLiteral,     // dotted quad, e.g. 10.1.2.3
  kParam,         // $name

  // Keywords (matched case-insensitively).
  kSelect, kFrom, kWhere, kGroup, kBy, kAs, kAnd, kOr, kNot,
  kMerge, kDefine, kCreate, kProtocol, kStream, kHaving, kTrue, kFalse,
  kIncreasing, kDecreasing, kStrictly, kNonrepeating, kBanded, kIn,

  // Punctuation and operators.
  kLParen, kRParen, kLBrace, kRBrace, kComma, kSemicolon, kDot, kColon,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kStar, kSlash, kPercent, kAmp, kPipe,
};

/// One lexical token with its source position (1-based line/column).
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;          // raw text (identifier name, string body, ...)
  int64_t int_value = 0;     // for kIntLiteral
  double float_value = 0;    // for kFloatLiteral
  uint32_t ip_value = 0;     // for kIpLiteral, host byte order
  int line = 0;
  int column = 0;
};

/// Human-readable token kind name, for diagnostics.
const char* TokenKindName(TokenKind kind);

}  // namespace gigascope::gsql

#endif  // GIGASCOPE_GSQL_TOKEN_H_
