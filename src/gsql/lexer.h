#ifndef GIGASCOPE_GSQL_LEXER_H_
#define GIGASCOPE_GSQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "gsql/token.h"

namespace gigascope::gsql {

/// Tokenizes GSQL source text.
///
/// Supports `--` line comments and `/* */` block comments. Keywords are
/// case-insensitive; identifiers preserve their original spelling.
/// A number of the form d.d.d.d is lexed as an IPv4 literal.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace gigascope::gsql

#endif  // GIGASCOPE_GSQL_LEXER_H_
