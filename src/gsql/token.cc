#include "gsql/token.h"

namespace gigascope::gsql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kIpLiteral: return "IP literal";
    case TokenKind::kParam: return "query parameter";
    case TokenKind::kSelect: return "SELECT";
    case TokenKind::kFrom: return "FROM";
    case TokenKind::kWhere: return "WHERE";
    case TokenKind::kGroup: return "GROUP";
    case TokenKind::kBy: return "BY";
    case TokenKind::kAs: return "AS";
    case TokenKind::kAnd: return "AND";
    case TokenKind::kOr: return "OR";
    case TokenKind::kNot: return "NOT";
    case TokenKind::kMerge: return "MERGE";
    case TokenKind::kDefine: return "DEFINE";
    case TokenKind::kCreate: return "CREATE";
    case TokenKind::kProtocol: return "PROTOCOL";
    case TokenKind::kStream: return "STREAM";
    case TokenKind::kHaving: return "HAVING";
    case TokenKind::kTrue: return "TRUE";
    case TokenKind::kFalse: return "FALSE";
    case TokenKind::kIncreasing: return "INCREASING";
    case TokenKind::kDecreasing: return "DECREASING";
    case TokenKind::kStrictly: return "STRICTLY";
    case TokenKind::kNonrepeating: return "NONREPEATING";
    case TokenKind::kBanded: return "BANDED";
    case TokenKind::kIn: return "IN";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
  }
  return "?";
}

}  // namespace gigascope::gsql
