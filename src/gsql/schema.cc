#include "gsql/schema.h"

#include <cctype>
#include <unordered_set>

namespace gigascope::gsql {

namespace {

std::string Lower(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) out += static_cast<char>(std::tolower(c));
  return out;
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt || type == DataType::kUint ||
         type == DataType::kFloat || type == DataType::kIp;
}

}  // namespace

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool: return "BOOL";
    case DataType::kInt: return "INT";
    case DataType::kUint: return "UINT";
    case DataType::kFloat: return "FLOAT";
    case DataType::kString: return "STRING";
    case DataType::kIp: return "IP";
  }
  return "?";
}

Result<DataType> ParseDataType(const std::string& name) {
  std::string lower = Lower(name);
  if (lower == "bool") return DataType::kBool;
  if (lower == "int") return DataType::kInt;
  if (lower == "uint") return DataType::kUint;
  if (lower == "float") return DataType::kFloat;
  if (lower == "string") return DataType::kString;
  if (lower == "ip") return DataType::kIp;
  return Status::ParseError("unknown data type '" + name + "'");
}

const char* OrderKindName(OrderKind kind) {
  switch (kind) {
    case OrderKind::kNone: return "none";
    case OrderKind::kStrictlyIncreasing: return "strictly increasing";
    case OrderKind::kIncreasing: return "increasing";
    case OrderKind::kStrictlyDecreasing: return "strictly decreasing";
    case OrderKind::kDecreasing: return "decreasing";
    case OrderKind::kNonRepeating: return "nonrepeating";
    case OrderKind::kBandedIncreasing: return "banded increasing";
    case OrderKind::kIncreasingInGroup: return "increasing in group";
  }
  return "?";
}

std::string OrderSpec::ToString() const {
  std::string out = OrderKindName(kind);
  if (kind == OrderKind::kBandedIncreasing) {
    out += "(" + std::to_string(band) + ")";
  } else if (kind == OrderKind::kIncreasingInGroup) {
    out += "(";
    for (size_t i = 0; i < group_fields.size(); ++i) {
      if (i > 0) out += ",";
      out += group_fields[i];
    }
    out += ")";
  }
  return out;
}

std::optional<size_t> StreamSchema::FieldIndex(
    const std::string& field_name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == field_name) return i;
  }
  return std::nullopt;
}

Status StreamSchema::Validate() const {
  if (name_.empty()) return Status::InvalidArgument("schema has no name");
  if (fields_.empty()) {
    return Status::InvalidArgument("schema '" + name_ + "' has no fields");
  }
  std::unordered_set<std::string> seen;
  for (const FieldDef& field : fields_) {
    if (field.name.empty()) {
      return Status::InvalidArgument("schema '" + name_ +
                                     "' has an unnamed field");
    }
    if (!seen.insert(field.name).second) {
      return Status::InvalidArgument("schema '" + name_ +
                                     "' has duplicate field '" + field.name +
                                     "'");
    }
    if (field.order.kind != OrderKind::kNone && !IsNumeric(field.type)) {
      return Status::InvalidArgument(
          "ordered attribute '" + field.name + "' in schema '" + name_ +
          "' must be numeric, got " + DataTypeName(field.type));
    }
  }
  for (const FieldDef& field : fields_) {
    if (field.order.kind == OrderKind::kIncreasingInGroup) {
      for (const std::string& group_field : field.order.group_fields) {
        if (!FieldIndex(group_field).has_value()) {
          return Status::InvalidArgument(
              "group field '" + group_field + "' of ordered attribute '" +
              field.name + "' does not exist in schema '" + name_ + "'");
        }
      }
    }
  }
  return Status::Ok();
}

std::string StreamSchema::ToString() const {
  std::string out = (kind_ == StreamKind::kProtocol ? "PROTOCOL " : "STREAM ");
  out += name_ + "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += DataTypeName(fields_[i].type);
    if (fields_[i].order.kind != OrderKind::kNone) {
      out += " [" + fields_[i].order.ToString() + "]";
    }
  }
  out += ")";
  return out;
}

}  // namespace gigascope::gsql
