#include "gsql/analyzer.h"

#include <algorithm>
#include <set>

namespace gigascope::gsql {

bool IsAggregateFunction(const std::string& name) {
  return name == "count" || name == "sum" || name == "min" ||
         name == "max" || name == "avg";
}

namespace {

Result<ResolvedInput> ResolveStreamRef(const StreamRef& ref,
                                       const Catalog& catalog) {
  ResolvedInput input;
  input.ref = ref;
  GS_ASSIGN_OR_RETURN(input.schema, catalog.GetSchema(ref.stream_name));
  if (input.schema.kind() == StreamKind::kProtocol) {
    if (!ref.interface_name.empty()) {
      if (!catalog.HasInterface(ref.interface_name)) {
        return Status::NotFound("unknown interface '" + ref.interface_name +
                                "'");
      }
      input.interface_name = ref.interface_name;
    } else {
      if (catalog.default_interface().empty()) {
        return Status::PlanError(
            "protocol '" + ref.stream_name +
            "' referenced without an interface and no default interface "
            "exists");
      }
      input.interface_name = catalog.default_interface();
    }
  } else if (!ref.interface_name.empty()) {
    return Status::PlanError("stream '" + ref.stream_name +
                             "' cannot be bound to an interface (only "
                             "Protocols can)");
  }
  return input;
}

/// Walks an expression tree resolving column references and checking
/// aggregate placement.
class ExprResolver {
 public:
  ExprResolver(const std::vector<ResolvedInput>& inputs,
               std::map<const Expr*, ColumnBinding>* bindings,
               std::vector<std::string> group_aliases = {})
      : inputs_(inputs),
        bindings_(bindings),
        group_aliases_(std::move(group_aliases)) {}

  bool saw_aggregate() const { return saw_aggregate_; }

  /// `allow_aggregates`: aggregates are legal here (SELECT item / HAVING).
  Status Resolve(const ExprPtr& expr, bool allow_aggregates) {
    return ResolveNode(expr, allow_aggregates, /*inside_aggregate=*/false);
  }

 private:
  Status ResolveNode(const ExprPtr& expr, bool allow_aggregates,
                     bool inside_aggregate) {
    if (expr == nullptr) return Status::Ok();
    if (auto* ref = std::get_if<ColumnRefExpr>(&expr->node)) {
      return BindColumn(expr.get(), *ref);
    }
    if (auto* call = std::get_if<CallExpr>(&expr->node)) {
      bool is_agg = IsAggregateFunction(call->function);
      if (is_agg) {
        if (!allow_aggregates) {
          return Status::PlanError("aggregate function '" + call->function +
                                   "' is not allowed in this clause");
        }
        if (inside_aggregate) {
          return Status::PlanError("nested aggregate '" + call->function +
                                   "'");
        }
        saw_aggregate_ = true;
      }
      for (const ExprPtr& arg : call->args) {
        GS_RETURN_IF_ERROR(ResolveNode(arg, allow_aggregates && !is_agg,
                                       inside_aggregate || is_agg));
      }
      return Status::Ok();
    }
    if (auto* unary = std::get_if<UnaryExpr>(&expr->node)) {
      return ResolveNode(unary->operand, allow_aggregates, inside_aggregate);
    }
    if (auto* binary = std::get_if<BinaryExpr>(&expr->node)) {
      GS_RETURN_IF_ERROR(
          ResolveNode(binary->left, allow_aggregates, inside_aggregate));
      return ResolveNode(binary->right, allow_aggregates, inside_aggregate);
    }
    return Status::Ok();  // literals, params
  }

  Status BindColumn(const Expr* expr, const ColumnRefExpr& ref) {
    ColumnBinding binding;
    int matches = 0;
    for (size_t i = 0; i < inputs_.size(); ++i) {
      const ResolvedInput& input = inputs_[i];
      if (!ref.stream.empty() && ref.stream != input.ref.effective_name() &&
          ref.stream != input.ref.stream_name) {
        continue;
      }
      auto field = input.schema.FieldIndex(ref.column);
      if (field.has_value()) {
        binding.input = i;
        binding.field = *field;
        ++matches;
      }
    }
    if (matches == 0) {
      // A bare name may refer to a GROUP BY key alias (e.g. `SELECT tb ...
      // GROUP BY time/60 AS tb`, the paper's own style); the planner
      // resolves those against the aggregate output, so leave it unbound.
      if (ref.stream.empty() &&
          std::find(group_aliases_.begin(), group_aliases_.end(),
                    ref.column) != group_aliases_.end()) {
        return Status::Ok();
      }
      std::string name =
          ref.stream.empty() ? ref.column : ref.stream + "." + ref.column;
      return Status::NotFound("column '" + name +
                              "' not found in any input stream");
    }
    if (matches > 1) {
      return Status::PlanError("ambiguous column '" + ref.column +
                               "' (qualify it with a stream name)");
    }
    (*bindings_)[expr] = binding;
    return Status::Ok();
  }

  const std::vector<ResolvedInput>& inputs_;
  std::map<const Expr*, ColumnBinding>* bindings_;
  std::vector<std::string> group_aliases_;
  bool saw_aggregate_ = false;
};

/// True if `expr` is a bare column reference to `alias`, or prints
/// identically to `key` — the two ways a SELECT item can match a GROUP BY
/// key.
bool MatchesGroupKey(const ExprPtr& expr, const SelectItem& key) {
  if (!key.alias.empty()) {
    if (auto* ref = std::get_if<ColumnRefExpr>(&expr->node)) {
      if (ref->stream.empty() && ref->column == key.alias) return true;
    }
  }
  return expr->ToString() == key.expr->ToString();
}

bool ExprContainsAggregate(const ExprPtr& expr) {
  if (expr == nullptr) return false;
  if (auto* call = std::get_if<CallExpr>(&expr->node)) {
    if (IsAggregateFunction(call->function)) return true;
    for (const ExprPtr& arg : call->args) {
      if (ExprContainsAggregate(arg)) return true;
    }
    return false;
  }
  if (auto* unary = std::get_if<UnaryExpr>(&expr->node)) {
    return ExprContainsAggregate(unary->operand);
  }
  if (auto* binary = std::get_if<BinaryExpr>(&expr->node)) {
    return ExprContainsAggregate(binary->left) ||
           ExprContainsAggregate(binary->right);
  }
  return false;
}

}  // namespace

Result<ResolvedSelect> AnalyzeSelect(const SelectStmt& stmt,
                                     const Catalog& catalog) {
  if (stmt.from.empty()) {
    return Status::PlanError("SELECT requires at least one input stream");
  }
  if (stmt.from.size() > 2) {
    return Status::PlanError("GSQL supports at most two-stream joins");
  }
  if (stmt.items.empty()) {
    return Status::PlanError("SELECT list is empty");
  }

  ResolvedSelect resolved;
  resolved.stmt = stmt;
  for (const StreamRef& ref : stmt.from) {
    GS_ASSIGN_OR_RETURN(ResolvedInput input, ResolveStreamRef(ref, catalog));
    resolved.inputs.push_back(std::move(input));
  }
  if (resolved.inputs.size() == 2 &&
      resolved.inputs[0].ref.effective_name() ==
          resolved.inputs[1].ref.effective_name()) {
    return Status::PlanError(
        "self-join inputs must have distinct aliases: '" +
        resolved.inputs[0].ref.effective_name() + "'");
  }

  std::vector<std::string> group_aliases;
  for (const SelectItem& key : resolved.stmt.group_by) {
    if (!key.alias.empty()) group_aliases.push_back(key.alias);
  }
  ExprResolver resolver(resolved.inputs, &resolved.bindings,
                        std::move(group_aliases));
  for (const SelectItem& item : resolved.stmt.items) {
    GS_RETURN_IF_ERROR(resolver.Resolve(item.expr, /*allow_aggregates=*/true));
  }
  GS_RETURN_IF_ERROR(
      resolver.Resolve(resolved.stmt.where, /*allow_aggregates=*/false));
  for (const SelectItem& key : resolved.stmt.group_by) {
    GS_RETURN_IF_ERROR(resolver.Resolve(key.expr, /*allow_aggregates=*/false));
  }
  GS_RETURN_IF_ERROR(
      resolver.Resolve(resolved.stmt.having, /*allow_aggregates=*/true));
  resolved.has_aggregates = resolver.saw_aggregate();

  if (resolved.stmt.having != nullptr && !resolved.is_aggregation()) {
    return Status::PlanError("HAVING requires GROUP BY or aggregates");
  }

  // In an aggregation query every non-aggregate SELECT item must be (or
  // reference) a GROUP BY key.
  if (resolved.is_aggregation()) {
    for (const SelectItem& item : resolved.stmt.items) {
      if (ExprContainsAggregate(item.expr)) continue;
      bool matched = false;
      for (const SelectItem& key : resolved.stmt.group_by) {
        if (MatchesGroupKey(item.expr, key)) {
          matched = true;
          break;
        }
      }
      if (!matched) {
        return Status::PlanError(
            "SELECT item '" + item.expr->ToString() +
            "' is neither an aggregate nor a GROUP BY key");
      }
    }
  }

  return resolved;
}

Result<ResolvedMerge> AnalyzeMerge(const MergeStmt& stmt,
                                   const Catalog& catalog) {
  if (stmt.from.size() < 2) {
    return Status::PlanError("MERGE requires at least two input streams");
  }
  if (stmt.merge_columns.size() != stmt.from.size()) {
    return Status::PlanError(
        "MERGE lists " + std::to_string(stmt.merge_columns.size()) +
        " merge columns but has " + std::to_string(stmt.from.size()) +
        " inputs; they must match positionally");
  }

  ResolvedMerge resolved;
  resolved.stmt = stmt;
  for (const StreamRef& ref : stmt.from) {
    GS_ASSIGN_OR_RETURN(ResolvedInput input, ResolveStreamRef(ref, catalog));
    resolved.inputs.push_back(std::move(input));
  }

  // All inputs must have identical field names and types.
  const StreamSchema& first = resolved.inputs[0].schema;
  for (size_t i = 1; i < resolved.inputs.size(); ++i) {
    const StreamSchema& other = resolved.inputs[i].schema;
    if (other.num_fields() != first.num_fields()) {
      return Status::PlanError("MERGE inputs have different arity");
    }
    for (size_t f = 0; f < first.num_fields(); ++f) {
      if (first.field(f).name != other.field(f).name ||
          first.field(f).type != other.field(f).type) {
        return Status::PlanError(
            "MERGE inputs disagree on field " + std::to_string(f) + ": '" +
            first.field(f).name + "' vs '" + other.field(f).name + "'");
      }
    }
  }

  for (size_t i = 0; i < stmt.merge_columns.size(); ++i) {
    const ColumnRefExpr& column = stmt.merge_columns[i];
    // The qualifier, when present, must name the positional input.
    if (!column.stream.empty()) {
      const StreamRef& ref = stmt.from[i];
      if (column.stream != ref.effective_name() &&
          column.stream != ref.stream_name) {
        return Status::PlanError("merge column " + std::to_string(i) +
                                 " is qualified with '" + column.stream +
                                 "' but input " + std::to_string(i) + " is '" +
                                 ref.effective_name() + "'");
      }
    }
    auto field = resolved.inputs[i].schema.FieldIndex(column.column);
    if (!field.has_value()) {
      return Status::NotFound("merge column '" + column.column +
                              "' not found in input '" +
                              stmt.from[i].effective_name() + "'");
    }
    const FieldDef& def = resolved.inputs[i].schema.field(*field);
    if (!def.order.IsIncreasingLike()) {
      return Status::PlanError(
          "merge column '" + column.column + "' of input '" +
          stmt.from[i].effective_name() +
          "' has no increasing ordering property (found: " +
          def.order.ToString() + ")");
    }
    resolved.merge_fields.push_back(*field);
  }

  // The merge attribute must be the same field in every input (the output
  // preserves its ordering property).
  for (size_t i = 1; i < resolved.merge_fields.size(); ++i) {
    if (resolved.merge_fields[i] != resolved.merge_fields[0]) {
      return Status::PlanError(
          "MERGE columns must name the same attribute in every input");
    }
  }

  return resolved;
}

}  // namespace gigascope::gsql
