#ifndef GIGASCOPE_GSQL_SCHEMA_H_
#define GIGASCOPE_GSQL_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace gigascope::gsql {

/// GSQL scalar data types.
enum class DataType : uint8_t {
  kBool,
  kInt,     // signed 64-bit
  kUint,    // unsigned 64-bit (timestamps, counters, ports)
  kFloat,   // double
  kString,  // variable-length bytes (payloads)
  kIp,      // IPv4 address, 32-bit
};

const char* DataTypeName(DataType type);

/// Parses a type name from DDL (case-insensitive): BOOL, INT, UINT, FLOAT,
/// STRING, IP.
Result<DataType> ParseDataType(const std::string& name);

/// Ordering-property kinds for ordered attributes (§2.1).
///
/// The kinds form a weakening hierarchy used by the planner:
///   StrictlyIncreasing  ⇒ Increasing ⇒ BandedIncreasing(B) for any B ≥ 0
///   StrictlyIncreasing  ⇒ NonRepeating
/// and symmetrically for decreasing. IncreasingInGroup holds only within
/// tuples sharing the named group fields (e.g. a Netflow start time within
/// a flow 5-tuple).
enum class OrderKind : uint8_t {
  kNone = 0,
  kStrictlyIncreasing,
  kIncreasing,          // monotone non-strict
  kStrictlyDecreasing,
  kDecreasing,
  kNonRepeating,        // monotone nonrepeating (e.g. hash of a timestamp)
  kBandedIncreasing,    // within `band` of the running maximum
  kIncreasingInGroup,   // increasing among tuples with equal group fields
};

const char* OrderKindName(OrderKind kind);

/// Full ordering specification of one attribute.
struct OrderSpec {
  OrderKind kind = OrderKind::kNone;
  /// Band width for kBandedIncreasing, in the attribute's own units.
  uint64_t band = 0;
  /// Group fields for kIncreasingInGroup.
  std::vector<std::string> group_fields;

  static OrderSpec None() { return OrderSpec{}; }
  static OrderSpec Strict() {
    return OrderSpec{OrderKind::kStrictlyIncreasing, 0, {}};
  }
  static OrderSpec Increasing() {
    return OrderSpec{OrderKind::kIncreasing, 0, {}};
  }
  static OrderSpec Banded(uint64_t band) {
    return OrderSpec{OrderKind::kBandedIncreasing, band, {}};
  }

  /// True for any increasing flavour usable to advance stream windows.
  bool IsIncreasingLike() const {
    return kind == OrderKind::kStrictlyIncreasing ||
           kind == OrderKind::kIncreasing ||
           kind == OrderKind::kBandedIncreasing;
  }

  /// True when tuples are globally in non-decreasing order (band 0).
  bool IsMonotoneIncreasing() const {
    return kind == OrderKind::kStrictlyIncreasing ||
           kind == OrderKind::kIncreasing;
  }

  std::string ToString() const;

  bool operator==(const OrderSpec& other) const {
    return kind == other.kind && band == other.band &&
           group_fields == other.group_fields;
  }
};

/// One attribute of a stream schema.
struct FieldDef {
  std::string name;
  DataType type = DataType::kInt;
  OrderSpec order;
};

/// Whether a stream is a raw packet source (Protocol) or a query output
/// (Stream) — §2.2's two flavours.
enum class StreamKind : uint8_t { kProtocol, kStream };

/// Schema of a Protocol or Stream.
class StreamSchema {
 public:
  StreamSchema() = default;
  StreamSchema(std::string name, StreamKind kind, std::vector<FieldDef> fields)
      : name_(std::move(name)), kind_(kind), fields_(std::move(fields)) {}

  const std::string& name() const { return name_; }
  StreamKind kind() const { return kind_; }
  const std::vector<FieldDef>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }

  /// Index of the named field, or nullopt.
  std::optional<size_t> FieldIndex(const std::string& field_name) const;

  const FieldDef& field(size_t index) const { return fields_[index]; }

  /// Validates the schema: non-empty unique field names, group fields of
  /// IncreasingInGroup specs exist, ordered attributes are numeric.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::string name_;
  StreamKind kind_ = StreamKind::kStream;
  std::vector<FieldDef> fields_;
};

}  // namespace gigascope::gsql

#endif  // GIGASCOPE_GSQL_SCHEMA_H_
