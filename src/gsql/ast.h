#ifndef GIGASCOPE_GSQL_AST_H_
#define GIGASCOPE_GSQL_AST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "gsql/schema.h"

namespace gigascope::gsql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Literal constant value in a query.
struct LiteralExpr {
  DataType type;
  bool bool_value = false;
  int64_t int_value = 0;      // kInt
  uint64_t uint_value = 0;    // kUint / kIp
  double float_value = 0;     // kFloat
  std::string string_value;   // kString
};

/// Reference to a stream attribute, optionally qualified: `B.ts` or `ts`.
struct ColumnRefExpr {
  std::string stream;  // empty if unqualified
  std::string column;
};

/// Reference to a query parameter: `$port`.
struct ParamExpr {
  std::string name;
};

/// Function call: aggregates (COUNT/SUM/MIN/MAX/AVG) or registered UDFs.
struct CallExpr {
  std::string function;     // lower-cased
  std::vector<ExprPtr> args;
  bool star = false;        // COUNT(*)
};

enum class UnaryOp { kNeg, kNot };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kBitAnd, kBitOr,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

const char* BinaryOpName(BinaryOp op);

struct UnaryExpr {
  UnaryOp op;
  ExprPtr operand;
};

struct BinaryExpr {
  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

/// A GSQL expression node; a closed variant over all expression forms.
struct Expr {
  std::variant<LiteralExpr, ColumnRefExpr, ParamExpr, CallExpr, UnaryExpr,
               BinaryExpr>
      node;
  int line = 0;
  int column = 0;

  std::string ToString() const;
};

ExprPtr MakeLiteralInt(int64_t value);
ExprPtr MakeLiteralUint(uint64_t value);
ExprPtr MakeLiteralString(std::string value);
ExprPtr MakeColumnRef(std::string stream, std::string column);
ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeCall(std::string function, std::vector<ExprPtr> args);
ExprPtr MakeParam(std::string name);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// One projected output: expression plus optional alias.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty if none
};

/// Reference to an input stream in FROM: `eth0.TCP alias` or `tcpdest`.
struct StreamRef {
  std::string interface_name;  // empty when unqualified
  std::string stream_name;
  std::string alias;           // defaults to stream_name

  const std::string& effective_name() const {
    return alias.empty() ? stream_name : alias;
  }
};

/// DEFINE block contents: query name and declared parameters.
struct DefineBlock {
  std::string query_name;
  /// Parameter name -> (type, default literal or null).
  struct ParamDecl {
    std::string name;
    DataType type = DataType::kInt;
    ExprPtr default_value;  // may be null
  };
  std::vector<ParamDecl> params;
};

/// SELECT ... FROM s1 [, s2] [WHERE ...] [GROUP BY ...] [HAVING ...]
struct SelectStmt {
  DefineBlock define;
  std::vector<SelectItem> items;
  std::vector<StreamRef> from;  // 1 or 2 entries (two-stream join max)
  ExprPtr where;                // may be null
  std::vector<SelectItem> group_by;
  ExprPtr having;               // may be null

  bool is_join() const { return from.size() == 2; }
  bool has_group_by() const { return !group_by.empty(); }
};

/// MERGE a.ts : b.ts FROM a, b  — order-preserving union (§2.2).
struct MergeStmt {
  DefineBlock define;
  /// The ordered attribute of each input that the merge aligns on,
  /// positionally matching `from`.
  std::vector<ColumnRefExpr> merge_columns;
  std::vector<StreamRef> from;
};

/// CREATE PROTOCOL name (field TYPE [order...], ...)
/// CREATE STREAM name (...) — same body, different stream kind.
struct CreateStmt {
  StreamKind kind = StreamKind::kProtocol;
  StreamSchema schema;
};

/// Any parsed GSQL statement.
using Statement = std::variant<SelectStmt, MergeStmt, CreateStmt>;

/// Result of parsing a GSQL source: one or more `;`-separated statements.
struct ParsedProgram {
  std::vector<Statement> statements;
};

}  // namespace gigascope::gsql

#endif  // GIGASCOPE_GSQL_AST_H_
