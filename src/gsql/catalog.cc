#include "gsql/catalog.h"

namespace gigascope::gsql {

Status Catalog::AddSchema(StreamSchema schema) {
  GS_RETURN_IF_ERROR(schema.Validate());
  auto [it, inserted] = schemas_.emplace(schema.name(), std::move(schema));
  if (!inserted) {
    return Status::AlreadyExists("schema '" + it->first +
                                 "' already registered");
  }
  return Status::Ok();
}

void Catalog::PutStreamSchema(StreamSchema schema) {
  schemas_[schema.name()] = std::move(schema);
}

Result<StreamSchema> Catalog::GetSchema(const std::string& name) const {
  auto it = schemas_.find(name);
  if (it == schemas_.end()) {
    return Status::NotFound("no schema named '" + name + "'");
  }
  return it->second;
}

bool Catalog::HasSchema(const std::string& name) const {
  return schemas_.count(name) > 0;
}

void Catalog::AddInterface(const std::string& name) {
  if (interfaces_.empty()) default_interface_ = name;
  interfaces_[name] = true;
}

bool Catalog::HasInterface(const std::string& name) const {
  return interfaces_.count(name) > 0;
}

std::vector<std::string> Catalog::SchemaNames() const {
  std::vector<std::string> names;
  names.reserve(schemas_.size());
  for (const auto& [name, schema] : schemas_) names.push_back(name);
  return names;
}

StreamSchema Catalog::BuiltinPacketSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"time", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"timestamp", DataType::kUint, OrderSpec::Strict()});
  fields.push_back({"srcIP", DataType::kIp, OrderSpec::None()});
  fields.push_back({"destIP", DataType::kIp, OrderSpec::None()});
  fields.push_back({"srcPort", DataType::kUint, OrderSpec::None()});
  fields.push_back({"destPort", DataType::kUint, OrderSpec::None()});
  fields.push_back({"protocol", DataType::kUint, OrderSpec::None()});
  fields.push_back({"ipVersion", DataType::kUint, OrderSpec::None()});
  fields.push_back({"len", DataType::kUint, OrderSpec::None()});
  fields.push_back({"tcpFlags", DataType::kUint, OrderSpec::None()});
  fields.push_back({"tcpSeq", DataType::kUint, OrderSpec::None()});
  fields.push_back({"ipId", DataType::kUint, OrderSpec::None()});
  fields.push_back({"fragOffset", DataType::kUint, OrderSpec::None()});
  fields.push_back({"moreFrags", DataType::kUint, OrderSpec::None()});
  fields.push_back({"payload", DataType::kString, OrderSpec::None()});
  fields.push_back({"ipPayload", DataType::kString, OrderSpec::None()});
  return StreamSchema("PKT", StreamKind::kProtocol, std::move(fields));
}

StreamSchema Catalog::BuiltinNetflowSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"endTime", DataType::kUint, OrderSpec::Increasing()});
  // Netflow records are dumped every 30 seconds; the start time is always
  // within 30 seconds of the high-water mark (§2.1).
  fields.push_back({"startTime", DataType::kUint, OrderSpec::Banded(30)});
  OrderSpec in_group;
  in_group.kind = OrderKind::kIncreasingInGroup;
  in_group.group_fields = {"srcIP", "destIP", "srcPort", "destPort",
                           "protocol"};
  fields.push_back({"flowStart", DataType::kUint, in_group});
  fields.push_back({"srcIP", DataType::kIp, OrderSpec::None()});
  fields.push_back({"destIP", DataType::kIp, OrderSpec::None()});
  fields.push_back({"srcPort", DataType::kUint, OrderSpec::None()});
  fields.push_back({"destPort", DataType::kUint, OrderSpec::None()});
  fields.push_back({"protocol", DataType::kUint, OrderSpec::None()});
  fields.push_back({"packets", DataType::kUint, OrderSpec::None()});
  fields.push_back({"bytes", DataType::kUint, OrderSpec::None()});
  return StreamSchema("NETFLOW", StreamKind::kProtocol, std::move(fields));
}

StreamSchema Catalog::BuiltinStatsSchema() {
  std::vector<FieldDef> fields;
  // Non-strict: every metric row of one snapshot carries the same time.
  fields.push_back({"time", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"ts", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"node", DataType::kString, OrderSpec::None()});
  fields.push_back({"metric", DataType::kString, OrderSpec::None()});
  fields.push_back({"value", DataType::kUint, OrderSpec::None()});
  // Appended last so positional consumers of the original five fields
  // keep working; "rts" is the parent process, workers are "w0", "w1"...
  fields.push_back({"proc", DataType::kString, OrderSpec::None()});
  return StreamSchema(StatsStreamName(), StreamKind::kStream,
                      std::move(fields));
}

const char* Catalog::StatsStreamName() { return "gs_stats"; }

}  // namespace gigascope::gsql
