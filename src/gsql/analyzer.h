#ifndef GIGASCOPE_GSQL_ANALYZER_H_
#define GIGASCOPE_GSQL_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "gsql/ast.h"
#include "gsql/catalog.h"

namespace gigascope::gsql {

/// Where a column reference points: input stream `input` (0 or 1), field
/// index `field` within that stream's schema.
struct ColumnBinding {
  size_t input = 0;
  size_t field = 0;
};

/// One resolved query input.
struct ResolvedInput {
  StreamRef ref;
  StreamSchema schema;
  /// Interface the Protocol is bound to (empty for Stream inputs).
  std::string interface_name;
};

/// True if `name` (lower-case) is one of GSQL's aggregate functions.
bool IsAggregateFunction(const std::string& name);

/// Name-resolved SELECT statement.
///
/// The analyzer performs name resolution and shape checks; types are
/// assigned later by the expression type checker (which also needs the UDF
/// registry). `bindings` maps every ColumnRef expression node in the
/// statement to its input/field.
struct ResolvedSelect {
  SelectStmt stmt;
  std::vector<ResolvedInput> inputs;
  std::map<const Expr*, ColumnBinding> bindings;
  bool has_aggregates = false;

  bool is_aggregation() const {
    return has_aggregates || !stmt.group_by.empty();
  }
  bool is_join() const { return inputs.size() == 2; }
};

/// Name-resolved MERGE statement.
struct ResolvedMerge {
  MergeStmt stmt;
  std::vector<ResolvedInput> inputs;
  /// Field index of the merge attribute in each input (all inputs share a
  /// schema, but the attribute is named per input in the syntax).
  std::vector<size_t> merge_fields;
};

/// Resolves a SELECT against the catalog:
///  - every FROM entry names a known Protocol or Stream; Protocols are
///    bound to their interface (default interface when unqualified);
///  - column references resolve unambiguously;
///  - aggregate functions appear only in SELECT items or HAVING, unnested;
///  - in an aggregation query, every non-aggregate SELECT item matches a
///    GROUP BY key (by alias or identical expression text).
Result<ResolvedSelect> AnalyzeSelect(const SelectStmt& stmt,
                                     const Catalog& catalog);

/// Resolves a MERGE: at least two inputs, all with identical field
/// names/types; one merge column per input; merge columns must carry an
/// increasing-like ordering property (the merge aligns on them).
Result<ResolvedMerge> AnalyzeMerge(const MergeStmt& stmt,
                                   const Catalog& catalog);

}  // namespace gigascope::gsql

#endif  // GIGASCOPE_GSQL_ANALYZER_H_
