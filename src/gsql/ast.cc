#include "gsql/ast.h"

#include "common/bytes.h"

namespace gigascope::gsql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kBitAnd: return "&";
    case BinaryOp::kBitOr: return "|";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNeq: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

namespace {

struct Printer {
  std::string operator()(const LiteralExpr& lit) const {
    switch (lit.type) {
      case DataType::kBool:
        return lit.bool_value ? "TRUE" : "FALSE";
      case DataType::kInt:
        return std::to_string(lit.int_value);
      case DataType::kUint:
        return std::to_string(lit.uint_value);
      case DataType::kFloat:
        return std::to_string(lit.float_value);
      case DataType::kString:
        return "'" + lit.string_value + "'";
      case DataType::kIp:
        return Ipv4ToString(static_cast<uint32_t>(lit.uint_value));
    }
    return "?";
  }
  std::string operator()(const ColumnRefExpr& ref) const {
    return ref.stream.empty() ? ref.column : ref.stream + "." + ref.column;
  }
  std::string operator()(const ParamExpr& param) const {
    return "$" + param.name;
  }
  std::string operator()(const CallExpr& call) const {
    std::string out = call.function + "(";
    if (call.star) {
      out += "*";
    } else {
      for (size_t i = 0; i < call.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += call.args[i]->ToString();
      }
    }
    return out + ")";
  }
  std::string operator()(const UnaryExpr& unary) const {
    return std::string(unary.op == UnaryOp::kNeg ? "-" : "NOT ") +
           unary.operand->ToString();
  }
  std::string operator()(const BinaryExpr& binary) const {
    return "(" + binary.left->ToString() + " " + BinaryOpName(binary.op) +
           " " + binary.right->ToString() + ")";
  }
};

}  // namespace

std::string Expr::ToString() const { return std::visit(Printer{}, node); }

ExprPtr MakeLiteralInt(int64_t value) {
  auto expr = std::make_shared<Expr>();
  LiteralExpr lit;
  lit.type = DataType::kInt;
  lit.int_value = value;
  expr->node = lit;
  return expr;
}

ExprPtr MakeLiteralUint(uint64_t value) {
  auto expr = std::make_shared<Expr>();
  LiteralExpr lit;
  lit.type = DataType::kUint;
  lit.uint_value = value;
  expr->node = lit;
  return expr;
}

ExprPtr MakeLiteralString(std::string value) {
  auto expr = std::make_shared<Expr>();
  LiteralExpr lit;
  lit.type = DataType::kString;
  lit.string_value = std::move(value);
  expr->node = lit;
  return expr;
}

ExprPtr MakeColumnRef(std::string stream, std::string column) {
  auto expr = std::make_shared<Expr>();
  expr->node = ColumnRefExpr{std::move(stream), std::move(column)};
  return expr;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right) {
  auto expr = std::make_shared<Expr>();
  expr->node = BinaryExpr{op, std::move(left), std::move(right)};
  return expr;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto expr = std::make_shared<Expr>();
  expr->node = UnaryExpr{op, std::move(operand)};
  return expr;
}

ExprPtr MakeCall(std::string function, std::vector<ExprPtr> args) {
  auto expr = std::make_shared<Expr>();
  expr->node = CallExpr{std::move(function), std::move(args), false};
  return expr;
}

ExprPtr MakeParam(std::string name) {
  auto expr = std::make_shared<Expr>();
  expr->node = ParamExpr{std::move(name)};
  return expr;
}

}  // namespace gigascope::gsql
