#ifndef GIGASCOPE_GSQL_PARSER_H_
#define GIGASCOPE_GSQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "gsql/ast.h"

namespace gigascope::gsql {

/// Parses GSQL source text into statements.
///
/// A program is one or more `;`-separated statements:
///
///   CREATE PROTOCOL PKT ( time UINT INCREASING, srcIP IP, ... );
///
///   DEFINE { query_name tcpdest0; }
///   SELECT destIP, destPort, time
///   FROM eth0.PKT
///   WHERE ipVersion = 4 AND protocol = 6;
///
///   DEFINE { query_name tcpdest; }
///   MERGE tcpdest0.time : tcpdest1.time
///   FROM tcpdest0, tcpdest1;
///
/// Queries support two-stream joins (`FROM a, b WHERE a.ts = b.ts AND ...`),
/// GROUP BY with expression keys and aliases (`GROUP BY time/60 AS tb`),
/// HAVING, and `$name` query parameters declared in the DEFINE block
/// (`param threshold UINT = 100;`).
Result<ParsedProgram> Parse(std::string_view source);

/// Parses a single statement (convenience for tests and the engine API).
Result<Statement> ParseStatement(std::string_view source);

}  // namespace gigascope::gsql

#endif  // GIGASCOPE_GSQL_PARSER_H_
