#include "gsql/parser.h"

#include <cctype>

#include "gsql/lexer.h"

namespace gigascope::gsql {

namespace {

std::string Lower(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) out += static_cast<char>(std::tolower(c));
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedProgram> ParseProgram() {
    ParsedProgram program;
    while (!Check(TokenKind::kEof)) {
      GS_ASSIGN_OR_RETURN(Statement stmt, ParseOneStatement());
      program.statements.push_back(std::move(stmt));
      // Consume the statement separator (optional before EOF).
      while (Match(TokenKind::kSemicolon)) {
      }
    }
    if (program.statements.empty()) {
      return Status::ParseError("empty GSQL program");
    }
    return program;
  }

  Result<Statement> ParseOneStatement() {
    if (Check(TokenKind::kCreate)) return ParseCreate();
    DefineBlock define;
    if (Check(TokenKind::kDefine)) {
      GS_RETURN_IF_ERROR(ParseDefine(&define));
    }
    if (Check(TokenKind::kSelect)) return ParseSelect(std::move(define));
    if (Check(TokenKind::kMerge)) return ParseMerge(std::move(define));
    return Error("expected CREATE, SELECT, MERGE, or DEFINE");
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t index = pos_ + ahead;
    if (index >= tokens_.size()) index = tokens_.size() - 1;  // EOF token
    return tokens_[index];
  }

  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }

  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    const Token& token = Peek();
    return Status::ParseError(message + " at line " +
                              std::to_string(token.line) + ", column " +
                              std::to_string(token.column) + " (got " +
                              TokenKindName(token.kind) +
                              (token.text.empty() ? "" : " '" + token.text + "'") +
                              ")");
  }

  Result<Token> Expect(TokenKind kind, const std::string& what) {
    if (!Check(kind)) return Error("expected " + what);
    return Advance();
  }

  /// Accepts an identifier-like token: some schema/field names collide with
  /// soft keywords (e.g. a field named `protocol`, the paper's own example).
  Result<std::string> ExpectName(const std::string& what) {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIdentifier:
      case TokenKind::kProtocol:
      case TokenKind::kStream:
      case TokenKind::kGroup:
      case TokenKind::kIn:
        ++pos_;
        return token.text.empty() ? std::string(TokenKindName(token.kind))
                                  : token.text;
      default:
        return Error("expected " + what);
    }
  }

  // -- DDL -----------------------------------------------------------------

  Result<Statement> ParseCreate() {
    Expect(TokenKind::kCreate, "CREATE").ok();
    StreamKind kind;
    if (Match(TokenKind::kProtocol)) {
      kind = StreamKind::kProtocol;
    } else if (Match(TokenKind::kStream)) {
      kind = StreamKind::kStream;
    } else {
      return Error("expected PROTOCOL or STREAM after CREATE");
    }
    GS_ASSIGN_OR_RETURN(std::string name, ExpectName("schema name"));
    GS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());
    std::vector<FieldDef> fields;
    do {
      GS_ASSIGN_OR_RETURN(FieldDef field, ParseFieldDecl());
      fields.push_back(std::move(field));
    } while (Match(TokenKind::kComma));
    GS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
    CreateStmt stmt;
    stmt.kind = kind;
    stmt.schema = StreamSchema(name, kind, std::move(fields));
    GS_RETURN_IF_ERROR(stmt.schema.Validate());
    return Statement(std::move(stmt));
  }

  Result<FieldDef> ParseFieldDecl() {
    FieldDef field;
    GS_ASSIGN_OR_RETURN(field.name, ExpectName("field name"));
    GS_ASSIGN_OR_RETURN(std::string type_name, ExpectName("type name"));
    GS_ASSIGN_OR_RETURN(field.type, ParseDataType(type_name));
    GS_RETURN_IF_ERROR(ParseOrderSpec(&field.order));
    return field;
  }

  Status ParseOrderSpec(OrderSpec* out) {
    if (Match(TokenKind::kStrictly)) {
      if (Match(TokenKind::kIncreasing)) {
        out->kind = OrderKind::kStrictlyIncreasing;
      } else if (Match(TokenKind::kDecreasing)) {
        out->kind = OrderKind::kStrictlyDecreasing;
      } else {
        return Error("expected INCREASING or DECREASING after STRICTLY")
            ;
      }
      return Status::Ok();
    }
    if (Match(TokenKind::kNonrepeating)) {
      out->kind = OrderKind::kNonRepeating;
      return Status::Ok();
    }
    if (Match(TokenKind::kBanded)) {
      GS_RETURN_IF_ERROR(
          Expect(TokenKind::kIncreasing, "INCREASING after BANDED").status());
      GS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());
      GS_ASSIGN_OR_RETURN(Token band,
                          Expect(TokenKind::kIntLiteral, "band width"));
      GS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
      out->kind = OrderKind::kBandedIncreasing;
      out->band = static_cast<uint64_t>(band.int_value);
      return Status::Ok();
    }
    if (Match(TokenKind::kIncreasing)) {
      if (Match(TokenKind::kIn)) {
        GS_RETURN_IF_ERROR(
            Expect(TokenKind::kGroup, "GROUP after INCREASING IN").status());
        GS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());
        out->kind = OrderKind::kIncreasingInGroup;
        do {
          GS_ASSIGN_OR_RETURN(std::string field, ExpectName("group field"));
          out->group_fields.push_back(std::move(field));
        } while (Match(TokenKind::kComma));
        GS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
        return Status::Ok();
      }
      out->kind = OrderKind::kIncreasing;
      return Status::Ok();
    }
    if (Match(TokenKind::kDecreasing)) {
      out->kind = OrderKind::kDecreasing;
      return Status::Ok();
    }
    out->kind = OrderKind::kNone;
    return Status::Ok();
  }

  // -- DEFINE ---------------------------------------------------------------

  Status ParseDefine(DefineBlock* define) {
    Expect(TokenKind::kDefine, "DEFINE").ok();
    bool braced = Match(TokenKind::kLBrace);
    do {
      GS_ASSIGN_OR_RETURN(std::string key, ExpectName("DEFINE entry"));
      std::string lower = Lower(key);
      if (lower == "query" || lower == "query_name") {
        // Accept both `query_name X` and the paper's `query name X`.
        if (lower == "query") {
          GS_ASSIGN_OR_RETURN(std::string name_kw, ExpectName("'name'"));
          if (Lower(name_kw) != "name") {
            return Error("expected 'name' after 'query' in DEFINE");
          }
        }
        GS_ASSIGN_OR_RETURN(define->query_name, ExpectName("query name"));
      } else if (lower == "param") {
        DefineBlock::ParamDecl decl;
        GS_ASSIGN_OR_RETURN(decl.name, ExpectName("parameter name"));
        GS_ASSIGN_OR_RETURN(std::string type_name, ExpectName("type name"));
        GS_ASSIGN_OR_RETURN(decl.type, ParseDataType(type_name));
        if (Match(TokenKind::kEq)) {
          GS_ASSIGN_OR_RETURN(decl.default_value, ParsePrimary());
        }
        define->params.push_back(std::move(decl));
      } else {
        return Error("unknown DEFINE entry '" + key + "'");
      }
      GS_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    } while (braced && !Check(TokenKind::kRBrace) && !Check(TokenKind::kEof));
    if (braced) {
      GS_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "'}'").status());
    }
    return Status::Ok();
  }

  // -- Queries ----------------------------------------------------------------

  Result<Statement> ParseSelect(DefineBlock define) {
    Expect(TokenKind::kSelect, "SELECT").ok();
    SelectStmt stmt;
    stmt.define = std::move(define);
    do {
      GS_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.items.push_back(std::move(item));
    } while (Match(TokenKind::kComma));
    GS_RETURN_IF_ERROR(Expect(TokenKind::kFrom, "FROM").status());
    do {
      GS_ASSIGN_OR_RETURN(StreamRef ref, ParseStreamRef());
      stmt.from.push_back(std::move(ref));
    } while (Match(TokenKind::kComma));
    if (stmt.from.size() > 2) {
      return Error("GSQL supports at most two-stream joins");
    }
    if (Match(TokenKind::kWhere)) {
      GS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (Match(TokenKind::kGroup)) {
      GS_RETURN_IF_ERROR(Expect(TokenKind::kBy, "BY after GROUP").status());
      do {
        GS_ASSIGN_OR_RETURN(SelectItem key, ParseSelectItem());
        stmt.group_by.push_back(std::move(key));
      } while (Match(TokenKind::kComma));
    }
    if (Match(TokenKind::kHaving)) {
      GS_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseMerge(DefineBlock define) {
    Expect(TokenKind::kMerge, "MERGE").ok();
    MergeStmt stmt;
    stmt.define = std::move(define);
    do {
      GS_ASSIGN_OR_RETURN(std::string first, ExpectName("merge column"));
      ColumnRefExpr ref;
      if (Match(TokenKind::kDot)) {
        ref.stream = first;
        GS_ASSIGN_OR_RETURN(ref.column, ExpectName("column name"));
      } else {
        ref.column = first;
      }
      stmt.merge_columns.push_back(std::move(ref));
    } while (Match(TokenKind::kColon));
    GS_RETURN_IF_ERROR(Expect(TokenKind::kFrom, "FROM").status());
    do {
      GS_ASSIGN_OR_RETURN(StreamRef ref, ParseStreamRef());
      stmt.from.push_back(std::move(ref));
    } while (Match(TokenKind::kComma));
    return Statement(std::move(stmt));
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    GS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (Match(TokenKind::kAs)) {
      GS_ASSIGN_OR_RETURN(item.alias, ExpectName("alias"));
    }
    return item;
  }

  Result<StreamRef> ParseStreamRef() {
    StreamRef ref;
    GS_ASSIGN_OR_RETURN(std::string first, ExpectName("stream name"));
    if (Match(TokenKind::kDot)) {
      ref.interface_name = first;
      GS_ASSIGN_OR_RETURN(ref.stream_name, ExpectName("protocol name"));
    } else {
      ref.stream_name = first;
    }
    // Optional alias: `FROM tcpdest B` or `FROM tcpdest AS B`.
    if (Match(TokenKind::kAs)) {
      GS_ASSIGN_OR_RETURN(ref.alias, ExpectName("stream alias"));
    } else if (Check(TokenKind::kIdentifier)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  // -- Expressions ------------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    GS_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (Match(TokenKind::kOr)) {
      GS_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    GS_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Match(TokenKind::kAnd)) {
      GS_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (Match(TokenKind::kNot)) {
      GS_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    GS_ASSIGN_OR_RETURN(ExprPtr left, ParseBitOr());
    BinaryOp op;
    if (Match(TokenKind::kEq)) {
      op = BinaryOp::kEq;
    } else if (Match(TokenKind::kNeq)) {
      op = BinaryOp::kNeq;
    } else if (Match(TokenKind::kLt)) {
      op = BinaryOp::kLt;
    } else if (Match(TokenKind::kLe)) {
      op = BinaryOp::kLe;
    } else if (Match(TokenKind::kGt)) {
      op = BinaryOp::kGt;
    } else if (Match(TokenKind::kGe)) {
      op = BinaryOp::kGe;
    } else {
      return left;
    }
    GS_ASSIGN_OR_RETURN(ExprPtr right, ParseBitOr());
    return MakeBinary(op, std::move(left), std::move(right));
  }

  Result<ExprPtr> ParseBitOr() {
    GS_ASSIGN_OR_RETURN(ExprPtr left, ParseBitAnd());
    while (Match(TokenKind::kPipe)) {
      GS_ASSIGN_OR_RETURN(ExprPtr right, ParseBitAnd());
      left = MakeBinary(BinaryOp::kBitOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseBitAnd() {
    GS_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    while (Match(TokenKind::kAmp)) {
      GS_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      left = MakeBinary(BinaryOp::kBitAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    GS_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Match(TokenKind::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Match(TokenKind::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      GS_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    GS_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Match(TokenKind::kStar)) {
        op = BinaryOp::kMul;
      } else if (Match(TokenKind::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Match(TokenKind::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        return left;
      }
      GS_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Match(TokenKind::kMinus)) {
      GS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeUnary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIntLiteral: {
        Advance();
        auto expr = MakeLiteralInt(token.int_value);
        expr->line = token.line;
        return expr;
      }
      case TokenKind::kFloatLiteral: {
        Advance();
        auto expr = std::make_shared<Expr>();
        LiteralExpr lit;
        lit.type = DataType::kFloat;
        lit.float_value = token.float_value;
        expr->node = lit;
        return expr;
      }
      case TokenKind::kStringLiteral: {
        Advance();
        return MakeLiteralString(token.text);
      }
      case TokenKind::kIpLiteral: {
        Advance();
        auto expr = std::make_shared<Expr>();
        LiteralExpr lit;
        lit.type = DataType::kIp;
        lit.uint_value = token.ip_value;
        expr->node = lit;
        return expr;
      }
      case TokenKind::kTrue:
      case TokenKind::kFalse: {
        Advance();
        auto expr = std::make_shared<Expr>();
        LiteralExpr lit;
        lit.type = DataType::kBool;
        lit.bool_value = token.kind == TokenKind::kTrue;
        expr->node = lit;
        return expr;
      }
      case TokenKind::kParam: {
        Advance();
        return MakeParam(token.text);
      }
      case TokenKind::kLParen: {
        Advance();
        GS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        GS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
        return inner;
      }
      default:
        break;
    }
    // Identifier-like: column ref or function call.
    GS_ASSIGN_OR_RETURN(std::string name, ExpectName("expression"));
    if (Match(TokenKind::kLParen)) {
      auto expr = std::make_shared<Expr>();
      CallExpr call;
      call.function = Lower(name);
      if (Match(TokenKind::kStar)) {
        call.star = true;
      } else if (!Check(TokenKind::kRParen)) {
        do {
          GS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          call.args.push_back(std::move(arg));
        } while (Match(TokenKind::kComma));
      }
      GS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
      expr->node = std::move(call);
      expr->line = token.line;
      expr->column = token.column;
      return expr;
    }
    if (Match(TokenKind::kDot)) {
      GS_ASSIGN_OR_RETURN(std::string column, ExpectName("column name"));
      auto expr = MakeColumnRef(name, column);
      expr->line = token.line;
      expr->column = token.column;
      return expr;
    }
    auto expr = MakeColumnRef("", name);
    expr->line = token.line;
    expr->column = token.column;
    return expr;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedProgram> Parse(std::string_view source) {
  GS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

Result<Statement> ParseStatement(std::string_view source) {
  GS_ASSIGN_OR_RETURN(ParsedProgram program, Parse(source));
  if (program.statements.size() != 1) {
    return Status::ParseError("expected exactly one statement, got " +
                              std::to_string(program.statements.size()));
  }
  return std::move(program.statements[0]);
}

}  // namespace gigascope::gsql
