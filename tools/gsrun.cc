// gsrun — run GSQL queries over a pcap capture file.
//
// The offline companion to the live engine: every query in the program is
// compiled exactly as it would be for live capture (LFTA/HFTA split and
// all); packets from the trace replay through the interface, and each
// query's output stream prints as tab-separated rows.
//
// Usage:
//   gsrun [options] QUERIES.gsql CAPTURE.pcap [interface-name]
//
// The interface name (default "eth0") is what `FROM <iface>.PKT` in the
// queries must reference. With --threads=N the HFTA nodes run on a worker
// pool while the replay thread drives interpretation and the LFTAs. With
// --stats-period=S the engine emits its self-telemetry onto the built-in
// `gs_stats` stream every S seconds of capture time, so queries in the
// program can aggregate the engine's own health feed.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/engine.h"
#include "gsql/parser.h"
#include "jit/engine.h"
#include "net/pcap.h"
#include "telemetry/http_export.h"
#include "telemetry/registry.h"

namespace {

using gigascope::core::Engine;
using gigascope::core::EngineOptions;
using gigascope::core::TupleSubscription;

/// SIGINT/SIGTERM request a graceful stop: the replay loop breaks, then
/// the normal epilogue runs — FlushAll, row printing, a final stats dump,
/// and a properly closed trace JSON (a hard exit used to truncate it into
/// an unloadable file). A second signal takes the default action (die).
volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int sig) {
  g_stop_requested = 1;
  std::signal(sig, SIG_DFL);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: gsrun [options] QUERIES.gsql CAPTURE.pcap [interface]\n"
      "\n"
      "  QUERIES.gsql      GSQL program: CREATE statements and queries\n"
      "  CAPTURE.pcap      pcap trace replayed through the interface\n"
      "  interface         interface name bound to `FROM <iface>.PKT`\n"
      "                    (default: eth0)\n"
      "\n"
      "options:\n"
      "  --threads=N       run HFTA nodes on N worker threads; the replay\n"
      "                    thread keeps interpretation and the LFTAs\n"
      "                    (default: 0, fully single-threaded)\n"
      "  --processes=N     run HFTA nodes in N supervised worker\n"
      "                    processes over shared-memory rings; crashed or\n"
      "                    hung workers are restarted with backoff and\n"
      "                    resynchronize at the next punctuation (default:\n"
      "                    0, no extra processes)\n"
      "  --fault=SPEC      inject one deterministic fault (testing):\n"
      "                    abort:worker=W,after=N[,jitter=J,seed=S]\n"
      "                    stall:worker=W,after=N[,ms=D]\n"
      "                    torn:stream=NAME[,nth=K]\n"
      "  --stats-period=S  emit engine telemetry on the built-in gs_stats\n"
      "                    stream every S seconds of capture time (S may\n"
      "                    be fractional); queries can SELECT ... FROM\n"
      "                    gs_stats (default: off)\n"
      "  --stats-dump      after the run, print every telemetry counter\n"
      "                    on stderr as NDJSON, one metric per line with\n"
      "                    stable key order {\"entity\",\"metric\",\"proc\",\n"
      "                    \"value\"} (schema: DESIGN.md §11)\n"
      "  --analyze         after the run, print EXPLAIN ANALYZE on stderr:\n"
      "                    each query's compiled plan annotated with actual\n"
      "                    tuple counts, poll/tuple timings, ring health,\n"
      "                    the jit tier actually active, and process\n"
      "                    placement with restart counts\n"
      "  --analyze-out=FILE\n"
      "                    write EXPLAIN ANALYZE as JSON to FILE\n"
      "  --metrics-port=N  serve live metrics over HTTP on 127.0.0.1:N\n"
      "                    while the run replays: GET /metrics returns\n"
      "                    Prometheus text exposition, GET /analyze the\n"
      "                    EXPLAIN ANALYZE JSON (N=0 picks a free port,\n"
      "                    printed on stderr)\n"
      "  --batch-size=N    accumulate up to N tuples per source batch\n"
      "                    before publishing into the data plane; 1\n"
      "                    restores per-tuple flow (default: 64)\n"
      "  --batch-delay=S   flush an open source batch once it is S seconds\n"
      "                    of capture time old, bounding batching latency\n"
      "                    (S may be fractional; default: 0, no age flush)\n"
      "  --trace-sample=N  tag 1-in-N injected packets and trace them\n"
      "                    through every operator (default: off)\n"
      "  --trace-out=FILE  write the collected trace as Chrome trace-event\n"
      "                    JSON to FILE after the run; load it in Perfetto\n"
      "                    or chrome://tracing (implies --trace-sample=128\n"
      "                    unless given)\n"
      "  --shed            enable closed-loop overload management: the\n"
      "                    engine reads its own telemetry and walks the\n"
      "                    shedding ladder (1-in-k source sampling with\n"
      "                    unbiased COUNT/SUM scaling, coarser LFTA epochs,\n"
      "                    bounded LFTA tables) under pressure, stepping\n"
      "                    back down with hysteresis once load subsides;\n"
      "                    shed_level/shed_rate/shed_tuples appear in\n"
      "                    gs_stats (default: off)\n"
      "  --jit=MODE        native compiled-query tier (DESIGN.md §15):\n"
      "                    off = bytecode VM only (default); sync =\n"
      "                    compile each query's kernels to C++ before it\n"
      "                    runs; async = start on the VM and hot-swap\n"
      "                    compiled kernels in when the build lands. The\n"
      "                    VM remains the fallback for expressions the\n"
      "                    tier cannot compile (UDF calls, strings) and\n"
      "                    when no C++ toolchain is found\n"
      "  --jit-cache-dir=DIR\n"
      "                    persistent content-hash cache for compiled\n"
      "                    kernels, reused across runs (default: a private\n"
      "                    temp dir removed on exit)\n"
      "  --shed-thresholds=RING,LAG,OCC\n"
      "                    escalation thresholds: RING = fraction of the\n"
      "                    fullest ring occupied, LAG = punctuation\n"
      "                    staleness in seconds (fractional ok), OCC =\n"
      "                    fraction of LFTA table slots open (default:\n"
      "                    0.5,2,0.9; implies --shed)\n"
      "  --help            this text\n");
  return 2;
}

int UnknownFlag(const char* flag) {
  std::fprintf(stderr, "gsrun: unknown or malformed option '%s'\n\n", flag);
  return Usage();
}

/// Parses "--name=<number>"; false when the value is missing or not a
/// clean non-negative number.
bool ParseNumericFlag(const char* arg, const char* prefix, double* out) {
  size_t len = std::strlen(prefix);
  if (std::strncmp(arg, prefix, len) != 0) return false;
  const char* value = arg + len;
  if (*value == '\0') return false;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || parsed < 0) return false;
  *out = parsed;
  return true;
}

/// Parses "--shed-thresholds=RING,LAG,OCC": exactly three clean
/// non-negative numbers, comma-separated.
bool ParseShedThresholds(const char* arg, double* ring, double* lag,
                         double* occ) {
  constexpr const char kPrefix[] = "--shed-thresholds=";
  size_t len = sizeof(kPrefix) - 1;
  if (std::strncmp(arg, kPrefix, len) != 0) return false;
  const char* value = arg + len;
  double* slots[] = {ring, lag, occ};
  for (size_t i = 0; i < 3; ++i) {
    char* end = nullptr;
    double parsed = std::strtod(value, &end);
    if (end == value || parsed < 0) return false;
    *slots[i] = parsed;
    value = end;
    if (i < 2) {
      if (*value != ',') return false;
      ++value;
    }
  }
  return *value == '\0';
}

void PrintHeader(const gigascope::gsql::StreamSchema& schema) {
  std::printf("== %s (", schema.name().c_str());
  for (size_t f = 0; f < schema.num_fields(); ++f) {
    if (f > 0) std::printf(", ");
    std::printf("%s", schema.field(f).name.c_str());
  }
  std::printf(") ==\n");
}

}  // namespace

int main(int argc, char** argv) {
  size_t threads = 0;
  size_t processes = 0;
  std::string fault_spec;
  double stats_period_seconds = 0;
  size_t batch_size = 64;
  double batch_delay_seconds = 0;
  bool stats_dump = false;
  bool analyze = false;
  std::string analyze_out;
  int metrics_port = -1;  // -1 = off; 0 = pick an ephemeral port
  size_t trace_sample = 0;
  std::string trace_out;
  gigascope::jit::JitOptions jit;
  bool shed = false;
  double shed_ring = 0.5;
  double shed_lag_seconds = 2.0;
  double shed_occ = 0.9;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      // Strict: every '--' argument must be a known flag with a
      // well-formed value; anything else is an error, not a file name.
      double parsed = 0;
      if (ParseNumericFlag(argv[i], "--threads=", &parsed) &&
          parsed == static_cast<size_t>(parsed)) {
        threads = static_cast<size_t>(parsed);
      } else if (ParseNumericFlag(argv[i], "--processes=", &parsed) &&
                 parsed == static_cast<size_t>(parsed)) {
        processes = static_cast<size_t>(parsed);
      } else if (std::strncmp(argv[i], "--fault=",
                              sizeof("--fault=") - 1) == 0) {
        fault_spec = argv[i] + sizeof("--fault=") - 1;
        if (fault_spec.empty()) return UnknownFlag(argv[i]);
      } else if (ParseNumericFlag(argv[i], "--stats-period=", &parsed)) {
        stats_period_seconds = parsed;
      } else if (ParseNumericFlag(argv[i], "--batch-size=", &parsed) &&
                 parsed == static_cast<size_t>(parsed) && parsed >= 1) {
        batch_size = static_cast<size_t>(parsed);
      } else if (ParseNumericFlag(argv[i], "--batch-delay=", &parsed)) {
        batch_delay_seconds = parsed;
      } else if (ParseNumericFlag(argv[i], "--trace-sample=", &parsed) &&
                 parsed == static_cast<size_t>(parsed) && parsed >= 1) {
        trace_sample = static_cast<size_t>(parsed);
      } else if (std::strncmp(argv[i], "--trace-out=",
                              sizeof("--trace-out=") - 1) == 0) {
        trace_out = argv[i] + sizeof("--trace-out=") - 1;
        if (trace_out.empty()) return UnknownFlag(argv[i]);
      } else if (std::strncmp(argv[i], "--jit=", sizeof("--jit=") - 1) ==
                 0) {
        auto mode =
            gigascope::jit::ParseJitMode(argv[i] + sizeof("--jit=") - 1);
        if (!mode.has_value()) return UnknownFlag(argv[i]);
        jit.mode = *mode;
      } else if (std::strncmp(argv[i], "--jit-cache-dir=",
                              sizeof("--jit-cache-dir=") - 1) == 0) {
        jit.cache_dir = argv[i] + sizeof("--jit-cache-dir=") - 1;
        if (jit.cache_dir.empty()) return UnknownFlag(argv[i]);
      } else if (std::strcmp(argv[i], "--stats-dump") == 0) {
        stats_dump = true;
      } else if (std::strcmp(argv[i], "--analyze") == 0) {
        analyze = true;
      } else if (std::strncmp(argv[i], "--analyze-out=",
                              sizeof("--analyze-out=") - 1) == 0) {
        analyze_out = argv[i] + sizeof("--analyze-out=") - 1;
        if (analyze_out.empty()) return UnknownFlag(argv[i]);
      } else if (ParseNumericFlag(argv[i], "--metrics-port=", &parsed) &&
                 parsed == static_cast<size_t>(parsed) && parsed <= 65535) {
        metrics_port = static_cast<int>(parsed);
      } else if (std::strcmp(argv[i], "--shed") == 0) {
        shed = true;
      } else if (ParseShedThresholds(argv[i], &shed_ring, &shed_lag_seconds,
                                     &shed_occ)) {
        shed = true;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        return Usage();
      } else {
        return UnknownFlag(argv[i]);
      }
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 2 || positional.size() > 3) return Usage();
  const std::string gsql_path = positional[0];
  const std::string pcap_path = positional[1];
  const std::string interface_name =
      positional.size() > 2 ? positional[2] : "eth0";

  std::ifstream file(gsql_path);
  if (!file) {
    std::fprintf(stderr, "gsrun: cannot open %s\n", gsql_path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string source = buffer.str();

  EngineOptions options;
  if (stats_period_seconds > 0) {
    options.stats_period = gigascope::SecondsToSimTime(stats_period_seconds);
  }
  options.batch_max_size = batch_size;
  if (batch_delay_seconds > 0) {
    options.batch_max_delay = gigascope::SecondsToSimTime(batch_delay_seconds);
  }
  // Asking for a trace file without a sampling rate still traces: pick a
  // rate light enough to leave the hot path alone on real captures.
  if (!trace_out.empty() && trace_sample == 0) trace_sample = 128;
  options.trace_sample = trace_sample;
  options.jit = jit;
  if (shed) {
    options.shed.enabled = true;
    options.shed.ring_occupancy = shed_ring;
    options.shed.punct_lag = gigascope::SecondsToSimTime(shed_lag_seconds);
    options.shed.lfta_occupancy = shed_occ;
  }
  if (threads > 0 && processes > 0) {
    std::fprintf(stderr,
                 "gsrun: --threads and --processes are exclusive pump "
                 "modes\n");
    return 1;
  }
  options.process.enabled = processes > 0;
  if (!fault_spec.empty()) {
    auto fault = gigascope::core::ParseFaultSpec(fault_spec);
    if (!fault.ok()) {
      std::fprintf(stderr, "gsrun: %s\n", fault.status().ToString().c_str());
      return 1;
    }
    if (processes == 0) {
      std::fprintf(stderr, "gsrun: --fault needs --processes=N\n");
      return 1;
    }
    options.fault = std::move(fault).value();
  }
  Engine engine(options);
  engine.AddInterface(interface_name);

  // Route each statement: CREATE -> DDL, queries -> AddQuery.
  auto program = gigascope::gsql::Parse(source);
  if (!program.ok()) {
    std::fprintf(stderr, "gsrun: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  struct Output {
    std::string name;
    std::unique_ptr<TupleSubscription> subscription;
  };
  std::vector<Output> outputs;

  // AddQuery/ExecuteDdl want one statement at a time; split the source on
  // top-level semicolons (strings are the only construct that may contain
  // ';'). The whole-program parse above already validated the syntax.
  std::vector<std::string> statements;
  std::string current;
  bool in_string = false;
  int brace_depth = 0;  // DEFINE { ... } blocks contain ';' entries
  for (size_t i = 0; i < source.size(); ++i) {
    char c = source[i];
    if (c == '\'') in_string = !in_string;
    if (!in_string) {
      if (c == '{') ++brace_depth;
      if (c == '}') --brace_depth;
    }
    if (c == ';' && !in_string && brace_depth == 0) {
      statements.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (current.find_first_not_of(" \t\r\n") != std::string::npos) {
    statements.push_back(current);
  }

  for (const std::string& statement_text : statements) {
    size_t begin = statement_text.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) continue;
    // DDL statements register schemas; everything else is a query.
    if (statement_text.compare(begin, 6, "CREATE") == 0 ||
        statement_text.compare(begin, 6, "create") == 0) {
      gigascope::Status ddl = engine.ExecuteDdl(statement_text);
      if (!ddl.ok()) {
        std::fprintf(stderr, "gsrun: %s\n", ddl.ToString().c_str());
        return 1;
      }
      continue;
    }
    auto info = engine.AddQuery(statement_text);
    if (!info.ok()) {
      std::fprintf(stderr, "gsrun: %s\nwhile compiling:%s\n",
                   info.status().ToString().c_str(),
                   statement_text.c_str());
      return 1;
    }
    auto subscription = engine.Subscribe(info->name, 1 << 20);
    if (!subscription.ok()) {
      std::fprintf(stderr, "gsrun: %s\n",
                   subscription.status().ToString().c_str());
      return 1;
    }
    outputs.push_back({info->name, std::move(subscription).value()});
  }
  if (outputs.empty()) {
    std::fprintf(stderr, "gsrun: no queries in %s\n", gsql_path.c_str());
    return 1;
  }

  gigascope::net::PcapReader reader;
  gigascope::Status status = reader.Open(pcap_path);
  if (!status.ok()) {
    std::fprintf(stderr, "gsrun: %s\n", status.ToString().c_str());
    return 1;
  }
  if (threads > 0) {
    gigascope::Status started = engine.StartThreads(threads);
    if (!started.ok()) {
      std::fprintf(stderr, "gsrun: %s\n", started.ToString().c_str());
      return 1;
    }
  }
  if (processes > 0) {
    gigascope::Status started = engine.StartProcesses(processes);
    if (!started.ok()) {
      std::fprintf(stderr, "gsrun: %s\n", started.ToString().c_str());
      return 1;
    }
  }
  // Live observability endpoint: a scraper can hit /metrics (Prometheus
  // text) and /analyze (EXPLAIN ANALYZE JSON) while the replay pumps.
  // Started after the pump mode so the handlers see settled placement.
  gigascope::telemetry::MetricsHttpServer metrics_server;
  if (metrics_port >= 0) {
    gigascope::telemetry::MetricsHttpServer::Handlers handlers;
    handlers.metrics = [&engine]() {
      return gigascope::telemetry::FormatPrometheus(
          engine.telemetry().Snapshot());
    };
    handlers.analyze = [&engine]() { return engine.AnalyzeJson(); };
    gigascope::Status started = metrics_server.Start(
        static_cast<uint16_t>(metrics_port), handlers);
    if (!started.ok()) {
      std::fprintf(stderr, "gsrun: %s\n", started.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "gsrun: metrics on http://127.0.0.1:%u/metrics\n",
                 static_cast<unsigned>(metrics_server.port()));
  }
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  gigascope::net::Packet packet;
  bool eof = false;
  uint64_t replayed = 0;
  while (!g_stop_requested && reader.Next(&packet, &eof).ok() && !eof) {
    engine.InjectPacket(interface_name, packet).ok();
    ++replayed;
    if (replayed % 1024 == 0) engine.PumpUntilIdle();
  }
  if (g_stop_requested) {
    std::fprintf(stderr,
                 "gsrun: interrupted — stopping workers, flushing, and "
                 "writing final output\n");
  }
  engine.PumpUntilIdle();
  engine.FlushAll();
  std::fprintf(stderr, "gsrun: replayed %llu packets from %s\n",
               static_cast<unsigned long long>(replayed),
               pcap_path.c_str());

  for (Output& output : outputs) {
    PrintHeader(output.subscription->schema());
    uint64_t rows = 0;
    while (auto row = output.subscription->NextRow()) {
      for (size_t f = 0; f < row->size(); ++f) {
        if (f > 0) std::printf("\t");
        std::printf("%s", (*row)[f].ToString().c_str());
      }
      std::printf("\n");
      ++rows;
    }
    std::fprintf(stderr, "gsrun: %s: %llu rows\n", output.name.c_str(),
                 static_cast<unsigned long long>(rows));
  }
  if (stats_dump) {
    std::string ndjson = gigascope::telemetry::FormatMetricsNdjson(
        engine.telemetry().Snapshot());
    std::fprintf(stderr, "%s", ndjson.c_str());
  }
  if (analyze) {
    std::string report = engine.AnalyzeText();
    std::fprintf(stderr, "%s", report.c_str());
  }
  if (!analyze_out.empty()) {
    std::ofstream analyze_file(analyze_out);
    if (!analyze_file) {
      std::fprintf(stderr, "gsrun: cannot write %s\n", analyze_out.c_str());
      return 1;
    }
    analyze_file << engine.AnalyzeJson() << "\n";
    std::fprintf(stderr, "gsrun: wrote EXPLAIN ANALYZE JSON to %s\n",
                 analyze_out.c_str());
  }
  metrics_server.Stop();
  if (!trace_out.empty() && engine.tracer() != nullptr) {
    std::ofstream trace_file(trace_out);
    if (!trace_file) {
      std::fprintf(stderr, "gsrun: cannot write %s\n", trace_out.c_str());
      return 1;
    }
    engine.tracer()->WriteJson(trace_file);
    std::fprintf(stderr,
                 "gsrun: wrote %llu traced packets to %s "
                 "(open in https://ui.perfetto.dev)\n",
                 static_cast<unsigned long long>(
                     engine.tracer()->sampled()),
                 trace_out.c_str());
  }
  return 0;
}
