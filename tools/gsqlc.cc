// gsqlc — the GSQL query compiler explorer.
//
// Reads a GSQL program (CREATE statements + queries) from a file or stdin,
// compiles every query, and prints for each: the logical plan, the
// LFTA/HFTA split, the imputed output schema (with ordering properties),
// and the generated NIC (BPF) pre-filter. This is the offline face of the
// paper's "GSQL processor is actually a code generator": it shows exactly
// what would be linked into the runtime and what would be pushed into the
// NIC.
//
// Usage:
//   gsqlc [--explain[=json]] [--jit] [file.gsql]  # stdin when no file given
//   echo "SELECT ..." | gsqlc --explain
//
// --explain switches to the stable EXPLAIN rendering (plan/explain.h):
// per-operator LFTA/HFTA placement, imputed ordering properties, window
// bounds, and expression cost against the LFTA budget. --explain=json
// emits one JSON object per statement instead, for tooling. --jit adds a
// `tier: native|vm` annotation per expression-bearing operator — the
// evaluation tier the native compiled-query layer would pick (DESIGN.md
// §15).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "gsql/analyzer.h"
#include "gsql/parser.h"
#include "plan/explain.h"
#include "plan/planner.h"
#include "plan/splitter.h"
#include "udf/registry.h"

namespace {

using gigascope::Status;
using gigascope::gsql::Catalog;

int Fail(const Status& status) {
  std::fprintf(stderr, "gsqlc: %s\n", status.ToString().c_str());
  return 1;
}

void PrintSchema(const gigascope::gsql::StreamSchema& schema) {
  std::printf("  output schema: %s\n", schema.ToString().c_str());
}

enum class ExplainMode { kOff, kText, kJson };

int CompileProgram(const std::string& source, ExplainMode explain,
                   const gigascope::plan::ExplainOptions& explain_opts) {
  auto program = gigascope::gsql::Parse(source);
  if (!program.ok()) return Fail(program.status());

  Catalog catalog;
  Status status = catalog.AddSchema(Catalog::BuiltinPacketSchema());
  if (!status.ok()) return Fail(status);
  status = catalog.AddSchema(Catalog::BuiltinNetflowSchema());
  if (!status.ok()) return Fail(status);
  // The engine's self-monitoring stream: registered here too so queries
  // over gs_stats compile in the explorer exactly as they do in gsrun.
  status = catalog.AddSchema(Catalog::BuiltinStatsSchema());
  if (!status.ok()) return Fail(status);
  catalog.AddInterface("eth0");
  catalog.AddInterface("eth1");

  gigascope::plan::PlannerOptions options;
  options.resolver = gigascope::udf::FunctionRegistry::Default();

  int index = 0;
  for (const auto& statement : program->statements) {
    ++index;
    if (const auto* create =
            std::get_if<gigascope::gsql::CreateStmt>(&statement)) {
      status = catalog.AddSchema(create->schema);
      if (!status.ok()) return Fail(status);
      if (explain == ExplainMode::kOff) {
        std::printf("[%d] registered %s\n\n", index,
                    create->schema.ToString().c_str());
      }
      continue;
    }

    gigascope::plan::PlannedQuery planned;
    if (const auto* select =
            std::get_if<gigascope::gsql::SelectStmt>(&statement)) {
      // Parameters get their declared defaults; gsqlc only plans.
      for (const auto& param : select->define.params) {
        options.params.emplace_back(param.name, param.type);
      }
      auto resolved = gigascope::gsql::AnalyzeSelect(*select, catalog);
      if (!resolved.ok()) return Fail(resolved.status());
      auto result = gigascope::plan::PlanSelect(*resolved, options);
      if (!result.ok()) return Fail(result.status());
      planned = std::move(result).value();
      options.params.clear();
    } else if (const auto* merge =
                   std::get_if<gigascope::gsql::MergeStmt>(&statement)) {
      auto resolved = gigascope::gsql::AnalyzeMerge(*merge, catalog);
      if (!resolved.ok()) return Fail(resolved.status());
      auto result = gigascope::plan::PlanMerge(*resolved, options);
      if (!result.ok()) return Fail(result.status());
      planned = std::move(result).value();
    } else {
      continue;
    }

    if (explain != ExplainMode::kOff) {
      auto split = gigascope::plan::SplitPlan(planned);
      if (!split.ok()) return Fail(split.status());
      if (explain == ExplainMode::kJson) {
        std::printf("%s\n", gigascope::plan::ExplainJson(planned, *split,
                                                         explain_opts)
                                .c_str());
      } else {
        std::printf("%s\n", gigascope::plan::ExplainText(planned, *split,
                                                         explain_opts)
                                .c_str());
      }
      catalog.PutStreamSchema(planned.output_schema);
      continue;
    }

    std::printf("[%d] query %s\n", index, planned.name.c_str());
    PrintSchema(planned.output_schema);
    if (planned.unbounded_aggregation) {
      std::printf(
          "  WARNING: no increasing-like group key — aggregate state is "
          "unbounded (§2.2)\n");
    }
    std::printf("  logical plan:\n%s", planned.root->ToString(2).c_str());

    auto split = gigascope::plan::SplitPlan(planned);
    if (!split.ok()) return Fail(split.status());
    if (split->lfta != nullptr) {
      std::printf("  lfta (%s)%s:\n%s", split->lfta_name.c_str(),
                  split->split_aggregation ? " [pre-aggregating]" : "",
                  split->lfta->ToString(2).c_str());
    } else {
      std::printf("  lfta: none (stream input)\n");
    }
    if (split->hfta != nullptr) {
      std::printf("  hfta:\n%s", split->hfta->ToString(2).c_str());
    } else {
      std::printf("  hfta: none (runs entirely as an LFTA)\n");
    }
    if (split->has_nic_program) {
      std::printf("  nic pre-filter (snap %u):\n%s", split->snap_len,
                  split->nic_program.ToString().c_str());
    } else {
      std::printf("  nic pre-filter: none pushable\n");
    }

    // Register the output so later statements can compose over it (§2.2).
    catalog.PutStreamSchema(planned.output_schema);
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ExplainMode explain = ExplainMode::kOff;
  gigascope::plan::ExplainOptions explain_opts;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--explain") {
      explain = ExplainMode::kText;
    } else if (arg == "--explain=json") {
      explain = ExplainMode::kJson;
    } else if (arg == "--explain=text") {
      explain = ExplainMode::kText;
    } else if (arg == "--jit") {
      explain_opts.jit = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "gsqlc: unknown flag %s\n", arg.c_str());
      return 2;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "gsqlc: at most one input file\n");
      return 2;
    }
  }
  std::string source;
  if (path != nullptr) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "gsqlc: cannot open %s\n", path);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  }
  return CompileProgram(source, explain, explain_opts);
}
