// gspcapgen — write a synthetic traffic trace as a pcap file.
//
// The repository's tests and benches drive the engine with the seeded
// TrafficGenerator; this tool dumps the same workload to disk so gsrun
// (and tcpdump/wireshark) can replay it. Used by CI to produce an input
// for the EXPLAIN ANALYZE artifact, and by the README monitoring
// quickstart so the examples work without a capture interface.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/pcap.h"
#include "workload/traffic_gen.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: gspcapgen OUT.pcap [options]\n"
      "  --packets=N     number of packets to write (default 10000)\n"
      "  --seed=N        generator seed (default 12)\n"
      "  --flows=N       concurrent flows (default 100)\n"
      "  --mbps=N        offered load in megabits/sec (default 8)\n"
      "deterministic for a given seed; ~40%% of packets hit port 80.\n");
}

bool ParseNumericFlag(const char* arg, const char* prefix, size_t* out) {
  size_t len = std::strlen(prefix);
  if (std::strncmp(arg, prefix, len) != 0) return false;
  char* end = nullptr;
  unsigned long long value = std::strtoull(arg + len, &end, 10);
  if (end == arg + len || *end != '\0') return false;
  *out = static_cast<size_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  size_t packets = 10000;
  size_t seed = 12;
  size_t flows = 100;
  size_t mbps = 8;
  for (int i = 1; i < argc; ++i) {
    size_t parsed = 0;
    if (ParseNumericFlag(argv[i], "--packets=", &parsed)) {
      packets = parsed;
    } else if (ParseNumericFlag(argv[i], "--seed=", &parsed)) {
      seed = parsed;
    } else if (ParseNumericFlag(argv[i], "--flows=", &parsed)) {
      flows = parsed;
    } else if (ParseNumericFlag(argv[i], "--mbps=", &parsed)) {
      mbps = parsed;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "gspcapgen: unknown option %s\n", argv[i]);
      Usage();
      return 1;
    } else if (out_path.empty()) {
      out_path = argv[i];
    } else {
      Usage();
      return 1;
    }
  }
  if (out_path.empty() || packets == 0 || flows == 0 || mbps == 0) {
    Usage();
    return 1;
  }

  gigascope::net::PcapWriter writer;
  gigascope::Status status = writer.Open(out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "gspcapgen: cannot open %s: %s\n", out_path.c_str(),
                 status.ToString().c_str());
    return 1;
  }

  gigascope::workload::TrafficConfig config;
  config.seed = static_cast<uint64_t>(seed);
  config.num_flows = static_cast<uint32_t>(flows);
  config.port80_fraction = 0.4;
  config.http_fraction = 0.7;
  config.offered_bits_per_sec = static_cast<double>(mbps) * 1e6;
  gigascope::workload::TrafficGenerator generator(config);
  for (size_t i = 0; i < packets; ++i) {
    status = writer.Write(generator.Next());
    if (!status.ok()) {
      std::fprintf(stderr, "gspcapgen: write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  status = writer.Close();
  if (!status.ok()) {
    std::fprintf(stderr, "gspcapgen: close failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("gspcapgen: wrote %llu packets to %s\n",
              static_cast<unsigned long long>(writer.packets_written()),
              out_path.c_str());
  return 0;
}
