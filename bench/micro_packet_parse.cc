// Microbenchmark: packet decode + protocol interpretation — the cost of
// turning raw bytes into a PKT tuple (the RTS "interpretation functions").

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "gsql/catalog.h"
#include "net/headers.h"

namespace {

gigascope::net::Packet MakePacket(size_t payload_len) {
  gigascope::net::TcpPacketSpec spec;
  spec.src_addr = 0x0a000001;
  spec.dst_addr = 0x0a000002;
  spec.dst_port = 80;
  spec.payload = std::string(payload_len, 'p');
  gigascope::net::Packet packet;
  packet.bytes = gigascope::net::BuildTcpPacket(spec);
  packet.orig_len = static_cast<uint32_t>(packet.bytes.size());
  packet.timestamp = 123456789;
  return packet;
}

void BM_DecodePacket(benchmark::State& state) {
  auto packet = MakePacket(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto decoded = gigascope::net::DecodePacket(packet.view());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodePacket)->Arg(0)->Arg(400)->Arg(1400);

/// Name-resolving convenience path: re-resolves every field name per call.
void BM_InterpretPacket(benchmark::State& state) {
  auto schema = gigascope::gsql::Catalog::BuiltinPacketSchema();
  auto packet = MakePacket(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto row = gigascope::core::InterpretPacket(schema, packet);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpretPacket)->Arg(0)->Arg(400)->Arg(1400);

/// The engine's inject path: extraction resolved once at source creation.
void BM_InterpretPacketPlanned(benchmark::State& state) {
  auto schema = gigascope::gsql::Catalog::BuiltinPacketSchema();
  auto plan = gigascope::core::BuildInterpretPlan(schema);
  auto packet = MakePacket(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto row = gigascope::core::InterpretPacket(plan, packet);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpretPacketPlanned)->Arg(0)->Arg(400)->Arg(1400);

/// Same, with the payload fields gated off — what a query set that never
/// reads payload (filters, aggregations over header fields) pays.
void BM_InterpretPacketNoPayload(benchmark::State& state) {
  auto schema = gigascope::gsql::Catalog::BuiltinPacketSchema();
  auto plan = gigascope::core::BuildInterpretPlan(schema);
  for (size_t f = 0; f < plan.fields.size(); ++f) {
    using Extract = gigascope::core::InterpretPlan::Extract;
    if (plan.fields[f] == Extract::kPayload ||
        plan.fields[f] == Extract::kIpPayload) {
      plan.wanted[f] = false;
    }
  }
  auto packet = MakePacket(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto row = gigascope::core::InterpretPacket(plan, packet);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpretPacketNoPayload)->Arg(0)->Arg(400)->Arg(1400);

}  // namespace
