// Microbenchmark: expression evaluation — the per-tuple cost at the heart
// of every LFTA/HFTA — on both tiers: the bytecode VM and the native
// compiled kernels (DESIGN.md §15). The *Native variants route the same
// bytecode through a sync JitEngine and evaluate via the published kernel;
// they skip when the environment has no C++ toolchain.

#include <benchmark/benchmark.h>

#include "expr/codegen.h"
#include "expr/native.h"
#include "expr/vm.h"
#include "jit/compiler.h"
#include "jit/engine.h"

namespace {

using gigascope::expr::CompiledExpr;
using gigascope::expr::EvalContext;
using gigascope::expr::EvalOutput;
using gigascope::expr::IrPtr;
using gigascope::expr::Value;
using gigascope::gsql::BinaryOp;
using gigascope::gsql::DataType;

/// Compiles `expr` to a native kernel through a process-wide sync JitEngine
/// (one module per call; the engine owns every loaded kernel for the life
/// of the benchmark binary). False when no toolchain is available or the
/// kernel was not published.
bool AttachNative(CompiledExpr* expr) {
  if (!gigascope::jit::JitCompiler::ToolchainAvailable()) return false;
  static auto* engine = [] {
    gigascope::jit::JitOptions options;
    options.mode = gigascope::jit::JitMode::kSync;
    return new gigascope::jit::JitEngine(options);
  }();
  auto batch = engine->BeginQuery();
  batch->RequestExpr(expr);
  engine->Submit(std::move(batch));
  return expr->native != nullptr && expr->native->kernel.load() != nullptr;
}

IrPtr Field(size_t index, DataType type) {
  return gigascope::expr::MakeFieldRef(0, index, type, "f");
}

IrPtr ConstU(uint64_t v) {
  return gigascope::expr::MakeConst(Value::Uint(v));
}

IrPtr Bin(BinaryOp op, DataType type, IrPtr l, IrPtr r) {
  return gigascope::expr::MakeBinaryIr(op, type, std::move(l), std::move(r));
}

// The paper's canonical LFTA predicate: ipVersion = 4 AND protocol = 6
// AND destPort = 80 over an unpacked row.
CompiledExpr LftaPredicate() {
  auto ir = Bin(
      BinaryOp::kAnd, DataType::kBool,
      Bin(BinaryOp::kAnd, DataType::kBool,
          Bin(BinaryOp::kEq, DataType::kBool, Field(0, DataType::kUint),
              ConstU(4)),
          Bin(BinaryOp::kEq, DataType::kBool, Field(1, DataType::kUint),
              ConstU(6))),
      Bin(BinaryOp::kEq, DataType::kBool, Field(2, DataType::kUint),
          ConstU(80)));
  return *gigascope::expr::Compile(ir);
}

void BM_LftaPredicate(benchmark::State& state) {
  CompiledExpr predicate = LftaPredicate();
  std::vector<Value> row = {Value::Uint(4), Value::Uint(6), Value::Uint(80)};
  EvalContext ctx;
  ctx.row0 = &row;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gigascope::expr::EvalPredicate(predicate, ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LftaPredicate);

void BM_BucketExpression(benchmark::State& state) {
  // time/60: the group-key expression of the paper's examples.
  auto ir = Bin(BinaryOp::kDiv, DataType::kUint, Field(0, DataType::kUint),
                ConstU(60));
  CompiledExpr compiled = *gigascope::expr::Compile(ir);
  std::vector<Value> row = {Value::Uint(123456)};
  EvalContext ctx;
  ctx.row0 = &row;
  EvalOutput out;
  for (auto _ : state) {
    gigascope::expr::Eval(compiled, ctx, &out).ok();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketExpression);

void BM_DeepArithmetic(benchmark::State& state) {
  // ((((f0+1)*3)-2)/2) % 97 — a deeper tree to expose dispatch overhead.
  auto ir = Bin(
      BinaryOp::kMod, DataType::kUint,
      Bin(BinaryOp::kDiv, DataType::kUint,
          Bin(BinaryOp::kSub, DataType::kUint,
              Bin(BinaryOp::kMul, DataType::kUint,
                  Bin(BinaryOp::kAdd, DataType::kUint,
                      Field(0, DataType::kUint), ConstU(1)),
                  ConstU(3)),
              ConstU(2)),
          ConstU(2)),
      ConstU(97));
  CompiledExpr compiled = *gigascope::expr::Compile(ir);
  std::vector<Value> row = {Value::Uint(9999)};
  EvalContext ctx;
  ctx.row0 = &row;
  EvalOutput out;
  for (auto _ : state) {
    gigascope::expr::Eval(compiled, ctx, &out).ok();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeepArithmetic);

// -- Native-tier series ------------------------------------------------------

void BM_LftaPredicateNative(benchmark::State& state) {
  CompiledExpr predicate = LftaPredicate();
  if (!AttachNative(&predicate)) {
    state.SkipWithError("no C++ toolchain; native tier unavailable");
    return;
  }
  std::vector<Value> row = {Value::Uint(4), Value::Uint(6), Value::Uint(80)};
  EvalContext ctx;
  ctx.row0 = &row;
  gigascope::expr::Evaluator evaluator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.EvalPredicate(predicate, ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LftaPredicateNative);

void BM_BucketExpressionNative(benchmark::State& state) {
  auto ir = Bin(BinaryOp::kDiv, DataType::kUint, Field(0, DataType::kUint),
                ConstU(60));
  CompiledExpr compiled = *gigascope::expr::Compile(ir);
  if (!AttachNative(&compiled)) {
    state.SkipWithError("no C++ toolchain; native tier unavailable");
    return;
  }
  std::vector<Value> row = {Value::Uint(123456)};
  EvalContext ctx;
  ctx.row0 = &row;
  EvalOutput out;
  gigascope::expr::Evaluator evaluator;
  for (auto _ : state) {
    evaluator.Eval(compiled, ctx, &out).ok();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketExpressionNative);

void BM_DeepArithmeticNative(benchmark::State& state) {
  auto ir = Bin(
      BinaryOp::kMod, DataType::kUint,
      Bin(BinaryOp::kDiv, DataType::kUint,
          Bin(BinaryOp::kSub, DataType::kUint,
              Bin(BinaryOp::kMul, DataType::kUint,
                  Bin(BinaryOp::kAdd, DataType::kUint,
                      Field(0, DataType::kUint), ConstU(1)),
                  ConstU(3)),
              ConstU(2)),
          ConstU(2)),
      ConstU(97));
  CompiledExpr compiled = *gigascope::expr::Compile(ir);
  if (!AttachNative(&compiled)) {
    state.SkipWithError("no C++ toolchain; native tier unavailable");
    return;
  }
  std::vector<Value> row = {Value::Uint(9999)};
  EvalContext ctx;
  ctx.row0 = &row;
  EvalOutput out;
  gigascope::expr::Evaluator evaluator;
  for (auto _ : state) {
    evaluator.Eval(compiled, ctx, &out).ok();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeepArithmeticNative);

// The aggregate update loop: per tuple, the ordered/LFTA aggregates
// evaluate every group-key expression and every aggregate argument. This
// models `GROUP BY time/60 ... sum(len*8+14)` — one key + one arg per row.
void AggUpdateExprs(CompiledExpr* key, CompiledExpr* arg) {
  *key = *gigascope::expr::Compile(Bin(BinaryOp::kDiv, DataType::kUint,
                                       Field(0, DataType::kUint), ConstU(60)));
  *arg = *gigascope::expr::Compile(
      Bin(BinaryOp::kAdd, DataType::kUint,
          Bin(BinaryOp::kMul, DataType::kUint, Field(1, DataType::kUint),
              ConstU(8)),
          ConstU(14)));
}

void BM_AggUpdateVm(benchmark::State& state) {
  CompiledExpr key, arg;
  AggUpdateExprs(&key, &arg);
  std::vector<Value> row = {Value::Uint(123456), Value::Uint(1500)};
  EvalContext ctx;
  ctx.row0 = &row;
  EvalOutput out;
  for (auto _ : state) {
    gigascope::expr::Eval(key, ctx, &out).ok();
    benchmark::DoNotOptimize(out);
    gigascope::expr::Eval(arg, ctx, &out).ok();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AggUpdateVm);

void BM_AggUpdateNative(benchmark::State& state) {
  CompiledExpr key, arg;
  AggUpdateExprs(&key, &arg);
  if (!AttachNative(&key) || !AttachNative(&arg)) {
    state.SkipWithError("no C++ toolchain; native tier unavailable");
    return;
  }
  std::vector<Value> row = {Value::Uint(123456), Value::Uint(1500)};
  EvalContext ctx;
  ctx.row0 = &row;
  EvalOutput out;
  gigascope::expr::Evaluator evaluator;
  for (auto _ : state) {
    evaluator.Eval(key, ctx, &out).ok();
    benchmark::DoNotOptimize(out);
    evaluator.Eval(arg, ctx, &out).ok();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AggUpdateNative);

}  // namespace
