// Microbenchmark: expression VM evaluation — the per-tuple cost at the
// heart of every LFTA/HFTA.

#include <benchmark/benchmark.h>

#include "expr/codegen.h"
#include "expr/vm.h"

namespace {

using gigascope::expr::CompiledExpr;
using gigascope::expr::EvalContext;
using gigascope::expr::EvalOutput;
using gigascope::expr::IrPtr;
using gigascope::expr::Value;
using gigascope::gsql::BinaryOp;
using gigascope::gsql::DataType;

IrPtr Field(size_t index, DataType type) {
  return gigascope::expr::MakeFieldRef(0, index, type, "f");
}

IrPtr ConstU(uint64_t v) {
  return gigascope::expr::MakeConst(Value::Uint(v));
}

IrPtr Bin(BinaryOp op, DataType type, IrPtr l, IrPtr r) {
  return gigascope::expr::MakeBinaryIr(op, type, std::move(l), std::move(r));
}

// The paper's canonical LFTA predicate: ipVersion = 4 AND protocol = 6
// AND destPort = 80 over an unpacked row.
CompiledExpr LftaPredicate() {
  auto ir = Bin(
      BinaryOp::kAnd, DataType::kBool,
      Bin(BinaryOp::kAnd, DataType::kBool,
          Bin(BinaryOp::kEq, DataType::kBool, Field(0, DataType::kUint),
              ConstU(4)),
          Bin(BinaryOp::kEq, DataType::kBool, Field(1, DataType::kUint),
              ConstU(6))),
      Bin(BinaryOp::kEq, DataType::kBool, Field(2, DataType::kUint),
          ConstU(80)));
  return *gigascope::expr::Compile(ir);
}

void BM_LftaPredicate(benchmark::State& state) {
  CompiledExpr predicate = LftaPredicate();
  std::vector<Value> row = {Value::Uint(4), Value::Uint(6), Value::Uint(80)};
  EvalContext ctx;
  ctx.row0 = &row;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gigascope::expr::EvalPredicate(predicate, ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LftaPredicate);

void BM_BucketExpression(benchmark::State& state) {
  // time/60: the group-key expression of the paper's examples.
  auto ir = Bin(BinaryOp::kDiv, DataType::kUint, Field(0, DataType::kUint),
                ConstU(60));
  CompiledExpr compiled = *gigascope::expr::Compile(ir);
  std::vector<Value> row = {Value::Uint(123456)};
  EvalContext ctx;
  ctx.row0 = &row;
  EvalOutput out;
  for (auto _ : state) {
    gigascope::expr::Eval(compiled, ctx, &out).ok();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketExpression);

void BM_DeepArithmetic(benchmark::State& state) {
  // ((((f0+1)*3)-2)/2) % 97 — a deeper tree to expose dispatch overhead.
  auto ir = Bin(
      BinaryOp::kMod, DataType::kUint,
      Bin(BinaryOp::kDiv, DataType::kUint,
          Bin(BinaryOp::kSub, DataType::kUint,
              Bin(BinaryOp::kMul, DataType::kUint,
                  Bin(BinaryOp::kAdd, DataType::kUint,
                      Field(0, DataType::kUint), ConstU(1)),
                  ConstU(3)),
              ConstU(2)),
          ConstU(2)),
      ConstU(97));
  CompiledExpr compiled = *gigascope::expr::Compile(ir);
  std::vector<Value> row = {Value::Uint(9999)};
  EvalContext ctx;
  ctx.row0 = &row;
  EvalOutput out;
  for (auto _ : state) {
    gigascope::expr::Eval(compiled, ctx, &out).ok();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeepArithmetic);

}  // namespace
