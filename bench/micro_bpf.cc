// Microbenchmark: the mini-BPF interpreter — the on-NIC pre-filter cost.

#include <benchmark/benchmark.h>

#include "bpf/interpreter.h"
#include "bpf/program.h"
#include "net/headers.h"

namespace {

gigascope::ByteBuffer MakePacket(uint16_t dst_port) {
  gigascope::net::TcpPacketSpec spec;
  spec.src_addr = 0x0a000001;
  spec.dst_addr = 0x0a000002;
  spec.dst_port = dst_port;
  spec.payload = std::string(400, 'p');
  return gigascope::net::BuildTcpPacket(spec);
}

void BM_PortFilterMatch(benchmark::State& state) {
  auto program = gigascope::bpf::BuildTcpDstPortFilter(80, 0);
  auto packet = MakePacket(80);
  gigascope::ByteSpan view(packet.data(), packet.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(gigascope::bpf::Run(program, view));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PortFilterMatch);

void BM_PortFilterReject(benchmark::State& state) {
  auto program = gigascope::bpf::BuildTcpDstPortFilter(80, 0);
  auto packet = MakePacket(443);
  gigascope::ByteSpan view(packet.data(), packet.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(gigascope::bpf::Run(program, view));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PortFilterReject);

void BM_AcceptAll(benchmark::State& state) {
  auto program = gigascope::bpf::BuildAcceptAll(96);
  auto packet = MakePacket(80);
  gigascope::ByteSpan view(packet.data(), packet.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(gigascope::bpf::Run(program, view));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AcceptAll);

}  // namespace
