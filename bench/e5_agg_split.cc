// E5 — §3 aggregate query splitting: end-to-end cost of a per-minute flow
// aggregation with the LFTA subaggregate / HFTA superaggregate split versus
// shipping every tuple to a single HFTA aggregation.
//
// "This aggregate query splitting optimization was one of our motivations
// to build Gigascope as a pure stream database."

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "workload/traffic_gen.h"

namespace {

using Clock = std::chrono::steady_clock;
using gigascope::core::Engine;

struct RunResult {
  double seconds;
  uint64_t boundary_tuples;  // tuples crossing into the HFTA
  uint64_t results;
};

/// `split`: let the planner split (Protocol source). Otherwise force the
/// aggregation to run unsplit by routing packets through a pass-through
/// LFTA stream first (Stream sources never get LFTAs).
RunResult Run(bool split, int packets) {
  Engine engine;
  engine.AddInterface("eth0");
  std::string agg_source = "eth0.PKT";
  if (!split) {
    engine.AddQuery(
        "DEFINE { query_name rawpkts; } "
        "SELECT time, destIP, len FROM eth0.PKT").ok();
    agg_source = "rawpkts";
  }
  std::string query =
      "DEFINE { query_name flows; } "
      "SELECT tb, destIP, count(*), sum(len) FROM " +
      agg_source + " GROUP BY time/60 AS tb, destIP";
  auto info = engine.AddQuery(query);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    std::exit(1);
  }
  auto sub = engine.Subscribe("flows", 1 << 20);
  std::string boundary =
      split ? info->lfta_name : agg_source;
  auto boundary_sub = engine.registry().Subscribe(boundary, 1 << 21);

  gigascope::workload::TrafficConfig config;
  config.seed = 3;
  config.num_flows = 2000;
  config.flow_skew = 1.0;
  config.offered_bits_per_sec = 200e6;
  gigascope::workload::TrafficGenerator gen(config);

  auto start = Clock::now();
  for (int i = 0; i < packets; ++i) {
    engine.InjectPacket("eth0", gen.Next()).ok();
    if (i % 2048 == 2047) engine.PumpUntilIdle();
  }
  engine.PumpUntilIdle();
  engine.FlushAll();
  auto end = Clock::now();

  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.boundary_tuples = 0;
  gigascope::rts::StreamMessage message;
  while ((*boundary_sub)->TryPop(&message)) {
    if (message.kind == gigascope::rts::StreamMessage::Kind::kTuple) {
      ++result.boundary_tuples;
    }
  }
  result.results = 0;
  while ((*sub)->NextRow()) ++result.results;
  return result;
}

}  // namespace

int main() {
  const int kPackets = 60000;
  std::printf(
      "E5: per-minute flow aggregation, %d packets — split\n"
      "    (LFTA subaggregate + HFTA superaggregate) vs unsplit (all\n"
      "    tuples shipped to one HFTA aggregation)\n\n",
      kPackets);
  std::printf("%-10s %12s %18s %12s %14s\n", "plan", "seconds",
              "boundary tuples", "results", "pkts/sec");
  RunResult split = Run(true, kPackets);
  RunResult unsplit = Run(false, kPackets);
  std::printf("%-10s %12.3f %18llu %12llu %14.0f\n", "split", split.seconds,
              static_cast<unsigned long long>(split.boundary_tuples),
              static_cast<unsigned long long>(split.results),
              kPackets / split.seconds);
  std::printf("%-10s %12.3f %18llu %12llu %14.0f\n", "unsplit",
              unsplit.seconds,
              static_cast<unsigned long long>(unsplit.boundary_tuples),
              static_cast<unsigned long long>(unsplit.results),
              kPackets / unsplit.seconds);
  std::printf(
      "\nexpected shape: identical results; the split plan ships far fewer\n"
      "tuples across the boundary (the LFTA's early reduction) and "
      "sustains\nhigher packet rates.\n");
  return 0;
}
