// Microbenchmark: ring-channel push/pop — the shared-memory hop between
// query nodes.

#include <benchmark/benchmark.h>

#include "rts/ring.h"

namespace {

using gigascope::rts::RingChannel;
using gigascope::rts::StreamMessage;

void BM_PushPop(benchmark::State& state) {
  RingChannel channel(1024);
  StreamMessage message;
  message.payload.resize(static_cast<size_t>(state.range(0)));
  StreamMessage out;
  for (auto _ : state) {
    channel.TryPush(message);
    channel.TryPop(&out);
    benchmark::DoNotOptimize(out.payload.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PushPop)->Arg(24)->Arg(256)->Arg(1500);

void BM_BurstThenDrain(benchmark::State& state) {
  RingChannel channel(4096);
  StreamMessage message;
  message.payload.resize(64);
  StreamMessage out;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) channel.TryPush(message);
    while (channel.TryPop(&out)) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BurstThenDrain);

}  // namespace
