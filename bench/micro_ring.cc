// Microbenchmark: ring-channel push/pop — the shared-memory hop between
// query nodes — single-threaded, and the two-thread producer/consumer
// handoff that the threaded engine rides on. The seed's coarse-mutex
// std::deque channel is kept here as the baseline the lock-free SPSC ring
// replaced.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <thread>

#include "rts/ring.h"

namespace {

using gigascope::rts::RingChannel;
using gigascope::rts::StreamMessage;

/// The seed implementation (coarse mutex around a deque), preserved as the
/// benchmark baseline.
class MutexRingChannel {
 public:
  explicit MutexRingChannel(size_t capacity) : capacity_(capacity) {}

  bool TryPush(StreamMessage message) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(message));
    ++pushed_;
    high_water_ = std::max(high_water_, queue_.size());
    return true;
  }

  bool TryPop(StreamMessage* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    ++popped_;
    return true;
  }

 private:
  const size_t capacity_;
  std::mutex mutex_;
  std::deque<StreamMessage> queue_;
  uint64_t pushed_ = 0;
  uint64_t popped_ = 0;
  size_t high_water_ = 0;
};

template <class Channel>
void BM_PushPop(benchmark::State& state) {
  Channel channel(1024);
  StreamMessage message;
  message.payload.resize(static_cast<size_t>(state.range(0)));
  StreamMessage out;
  for (auto _ : state) {
    channel.TryPush(message);
    channel.TryPop(&out);
    benchmark::DoNotOptimize(out.payload.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PushPop<RingChannel>)->Arg(24)->Arg(256)->Arg(1500);
BENCHMARK(BM_PushPop<MutexRingChannel>)->Arg(24)->Arg(256)->Arg(1500);

template <class Channel>
void BM_BurstThenDrain(benchmark::State& state) {
  Channel channel(4096);
  StreamMessage message;
  message.payload.resize(64);
  StreamMessage out;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) channel.TryPush(message);
    while (channel.TryPop(&out)) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BurstThenDrain<RingChannel>);
BENCHMARK(BM_BurstThenDrain<MutexRingChannel>);

/// The case the threaded engine cares about: one producer thread, one
/// consumer thread, backpressure instead of drops. Each benchmark
/// iteration hands one batch across the channel.
template <class Channel>
void BM_TwoThreadHandoff(benchmark::State& state) {
  constexpr uint64_t kBatch = 4096;
  Channel channel(1024);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> target{0};

  std::thread producer([&] {
    StreamMessage message;
    message.payload.resize(64);
    uint64_t produced = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (produced < target.load(std::memory_order_acquire)) {
        if (channel.TryPush(message)) {
          ++produced;
        }
      } else {
        std::this_thread::yield();
      }
    }
  });

  StreamMessage out;
  uint64_t popped = 0;
  for (auto _ : state) {
    target.fetch_add(kBatch, std::memory_order_release);
    const uint64_t goal = popped + kBatch;
    while (popped < goal) {
      if (channel.TryPop(&out)) {
        ++popped;
      } else {
        std::this_thread::yield();
      }
    }
  }
  stop.store(true, std::memory_order_release);
  producer.join();
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_TwoThreadHandoff<RingChannel>)->UseRealTime();
BENCHMARK(BM_TwoThreadHandoff<MutexRingChannel>)->UseRealTime();

}  // namespace
