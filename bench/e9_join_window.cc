// E9 — §2.1/§2.2: the join window bounds the join's state. Sweep the band
// width B of the window constraint and report the join's buffered-tuple
// high-water mark; also sweep the input band (almost-sorted input) to show
// the extra slack it demands.

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "expr/codegen.h"
#include "ops/join.h"

namespace {

using gigascope::Rng;
using gigascope::expr::Value;
using gigascope::gsql::DataType;
using gigascope::gsql::FieldDef;
using gigascope::gsql::OrderSpec;
using gigascope::gsql::StreamKind;
using gigascope::gsql::StreamSchema;
using gigascope::ops::WindowJoinNode;

StreamSchema SideSchema(const std::string& name, uint64_t band) {
  std::vector<FieldDef> fields;
  fields.push_back({"ts", DataType::kUint,
                    band > 0 ? OrderSpec::Banded(band)
                             : OrderSpec::Increasing()});
  return StreamSchema(name, StreamKind::kStream, fields);
}

struct JoinRun {
  uint64_t matches;
  uint64_t high_water;
};

JoinRun Run(int64_t window, uint64_t input_band, uint64_t tuples,
            bool order_preserving = false) {
  gigascope::rts::StreamRegistry registry;
  registry.DeclareStream(SideSchema("l", input_band)).ok();
  registry.DeclareStream(SideSchema("r", input_band)).ok();

  WindowJoinNode::Spec spec;
  spec.name = "j";
  spec.left_schema = SideSchema("l", input_band);
  spec.right_schema = SideSchema("r", input_band);
  std::vector<FieldDef> out_fields;
  out_fields.push_back({"ts", DataType::kUint, OrderSpec::Increasing()});
  out_fields.push_back({"r_ts", DataType::kUint, OrderSpec::None()});
  spec.output_schema = StreamSchema("j", StreamKind::kStream, out_fields);
  registry.DeclareStream(spec.output_schema).ok();
  spec.left_field = 0;
  spec.right_field = 0;
  spec.lo = -window;
  spec.hi = window;
  spec.left_band = input_band;
  spec.right_band = input_band;
  spec.order_preserving = order_preserving;

  auto left = registry.Subscribe("l", 1 << 16);
  auto right = registry.Subscribe("r", 1 << 16);
  auto params = std::make_shared<std::vector<Value>>();
  WindowJoinNode node(std::move(spec), *left, *right, &registry, params);

  // Both sides share one clock (a duplex link's two directions observe the
  // same time), so buffered state reflects the window, not stream drift.
  Rng rng(9);
  gigascope::rts::TupleCodec codec(SideSchema("l", input_band));
  uint64_t base = 0;
  for (uint64_t i = 0; i < tuples; ++i) {
    base += 4 + rng.NextBelow(8);
    uint64_t tl = base;
    uint64_t tr = base + rng.NextBelow(4);
    uint64_t jitter_l =
        input_band > 0 ? rng.NextBelow(input_band + 1) : 0;
    uint64_t jitter_r =
        input_band > 0 ? rng.NextBelow(input_band + 1) : 0;
    gigascope::rts::StreamMessage message;
    codec.Encode({Value::Uint(tl >= jitter_l ? tl - jitter_l : 0)},
                 &message.payload);
    registry.Publish("l", message);
    message.payload.clear();
    codec.Encode({Value::Uint(tr >= jitter_r ? tr - jitter_r : 0)},
                 &message.payload);
    registry.Publish("r", message);
    if (i % 32 == 31) node.Poll(1 << 20);
  }
  node.Poll(1 << 20);
  JoinRun result;
  result.matches = node.tuples_out();
  result.high_water = node.buffer_high_water();
  return result;
}

}  // namespace

int main() {
  const uint64_t kTuples = 20000;
  std::printf(
      "E9: window join state vs window width (|l.ts - r.ts| <= B),\n"
      "    %llu tuples per side, mean inter-arrival 8 ticks\n\n",
      static_cast<unsigned long long>(kTuples));
  std::printf("%-14s %-12s %14s %16s\n", "window B", "input band",
              "matches", "peak buffered");
  for (uint64_t input_band : {uint64_t{0}, uint64_t{16}}) {
    for (int64_t window : {0, 1, 4, 16, 64, 256}) {
      JoinRun run = Run(window, input_band, kTuples);
      std::printf("%-14lld %-12llu %14llu %16llu\n",
                  static_cast<long long>(window),
                  static_cast<unsigned long long>(input_band),
                  static_cast<unsigned long long>(run.matches),
                  static_cast<unsigned long long>(run.high_water));
    }
  }

  // §2.1's algorithm choice: "monotonically increasing requires more
  // buffer space" — the order-preserving join buffers completed matches
  // until the output bound passes them.
  std::printf("\njoin algorithm ablation (window B, monotone inputs):\n");
  std::printf("%-14s %22s %22s\n", "window B", "eager peak buffered",
              "order-preserving peak");
  for (int64_t window : {1, 16, 64, 256}) {
    JoinRun eager = Run(window, 0, kTuples, false);
    JoinRun preserving = Run(window, 0, kTuples, true);
    std::printf("%-14lld %22llu %22llu\n", static_cast<long long>(window),
                static_cast<unsigned long long>(eager.high_water),
                static_cast<unsigned long long>(preserving.high_water));
  }
  std::printf(
      "\nexpected shape: buffered state grows linearly with the window\n"
      "width and gains a constant slack for banded (almost-sorted) "
      "inputs\n— the ordering property is exactly what bounds the join's "
      "state.\n");
  return 0;
}
