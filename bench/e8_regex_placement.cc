// E8 — §4: "Regular expression finding is too expensive for an LFTA, so
// the filter query was split into an LFTA which filters TCP packets on
// port 80, and an HFTA part which performs the regular expression
// matching."
//
// Ablation: run the HTTP query with the regex forced onto the per-packet
// fast path (as if in the LFTA) versus behind the port-80 pre-filter (the
// split the planner chooses). Reports per-packet cost and sustainable rate
// in the capture simulator.

#include <chrono>
#include <cstdio>
#include <vector>

#include "sim/capture_pipeline.h"
#include "udf/regex.h"
#include "workload/traffic_gen.h"

namespace {

using Clock = std::chrono::steady_clock;
using gigascope::sim::CaptureMode;
using gigascope::sim::PipelineConfig;
using gigascope::sim::PipelineStats;
using gigascope::sim::RunCapturePipeline;

}  // namespace

int main() {
  // ---- Part 1: measured per-packet CPU cost of the two placements ----
  auto regex = gigascope::udf::Regex::Compile("^[^\\n]*HTTP/1.*");
  if (!regex.ok()) return 1;

  gigascope::workload::TrafficConfig config;
  config.seed = 5;
  config.num_flows = 500;
  config.port80_fraction = 0.1;  // 10% of packets are port 80
  config.http_fraction = 0.5;
  config.offered_bits_per_sec = 100e6;
  gigascope::workload::TrafficGenerator gen(config);
  const int kPackets = 100000;
  std::vector<gigascope::net::Packet> packets;
  packets.reserve(kPackets);
  for (int i = 0; i < kPackets; ++i) packets.push_back(gen.Next());

  auto payload_of = [](const gigascope::net::Packet& packet) {
    auto decoded = gigascope::net::DecodePacket(packet.view());
    std::string_view payload;
    if (decoded.ok()) {
      payload = std::string_view(
          reinterpret_cast<const char*>(decoded->payload.data()),
          decoded->payload.size());
    }
    return payload;
  };
  auto is_port80 = [](const gigascope::net::Packet& packet) {
    auto decoded = gigascope::net::DecodePacket(packet.view());
    return decoded.ok() && decoded->is_tcp() && decoded->tcp->dst_port == 80;
  };

  // Placement A: regex on every packet (what an LFTA-resident regex would
  // mean).
  uint64_t matches_every = 0;
  auto start = Clock::now();
  for (const auto& packet : packets) {
    if (regex->Matches(payload_of(packet))) ++matches_every;
  }
  auto end = Clock::now();
  double every_us =
      std::chrono::duration<double>(end - start).count() * 1e6 / kPackets;

  // Placement B: port-80 pre-filter first, regex only on survivors.
  uint64_t matches_split = 0;
  start = Clock::now();
  for (const auto& packet : packets) {
    if (is_port80(packet) && regex->Matches(payload_of(packet))) {
      ++matches_split;
    }
  }
  end = Clock::now();
  double split_us =
      std::chrono::duration<double>(end - start).count() * 1e6 / kPackets;

  std::printf(
      "E8: placement of the HTTP regex (10%% of traffic is port 80)\n\n");
  std::printf("%-28s %14s %10s\n", "placement", "us/packet", "matches");
  std::printf("%-28s %14.3f %10llu\n", "regex on every packet", every_us,
              static_cast<unsigned long long>(matches_every));
  std::printf("%-28s %14.3f %10llu\n", "port-80 filter, then regex",
              split_us, static_cast<unsigned long long>(matches_split));

  // ---- Part 2: sustainable rate in the capture simulator ----
  // Force the regex cost onto the LFTA by charging it per packet.
  std::vector<double> rates = {100e6, 200e6, 300e6, 400e6, 500e6, 600e6};
  double lfta_regex_max = 0, split_max = 0;
  for (double rate : rates) {
    PipelineConfig pipeline;
    pipeline.traffic = config;
    pipeline.traffic.offered_bits_per_sec = rate;
    pipeline.duration_seconds = 0.3;
    pipeline.mode = CaptureMode::kHostLfta;
    // Split placement (planner's choice): defaults.
    PipelineStats stats = RunCapturePipeline(pipeline);
    if (stats.LossRate() <= 0.02 && rate > split_max) split_max = rate;
    // Regex-in-LFTA placement: every packet pays the regex cost.
    pipeline.lfta_filter_cost_seconds += pipeline.hfta_regex_cost_seconds;
    stats = RunCapturePipeline(pipeline);
    if (stats.LossRate() <= 0.02 && rate > lfta_regex_max) {
      lfta_regex_max = rate;
    }
  }
  std::printf("\nsustainable rate at <=2%% loss (capture simulator):\n");
  std::printf("%-28s %10.0f Mbit/s\n", "regex in LFTA (per packet)",
              lfta_regex_max / 1e6);
  std::printf("%-28s %10.0f Mbit/s\n", "split (regex in HFTA)",
              split_max / 1e6);
  std::printf(
      "\nexpected shape: the split placement costs ~10x less per packet\n"
      "and sustains a higher input rate — the paper's reason for the\n"
      "LFTA/HFTA split of the HTTP query.\n");
  return 0;
}
