// Microbenchmark: the cost of Histogram::Record on the per-tuple hot path,
// against the plain Counter increment it rides next to. Record is four
// relaxed load+store pairs plus a bit_width — no RMW — so it should land
// within a small multiple of a bare counter bump, cheap enough for
// per-poll and per-ring-push call sites. Snapshot cost (64 relaxed loads)
// is measured too: it runs on the stats-reader path, not the hot path,
// but EmitStatsSnapshot calls it once per histogram per period.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "telemetry/counter.h"
#include "telemetry/histogram.h"

namespace {

using gigascope::telemetry::Counter;
using gigascope::telemetry::Histogram;
using gigascope::telemetry::HistogramSnapshot;

// Pseudo-latency inputs spanning several buckets, so branch prediction on
// bit_width sees realistic variety rather than one hot bucket.
uint64_t NextValue(uint64_t& state) {
  state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  return (state >> 33) & 0xFFFFF;  // 0 .. ~1M "nanoseconds"
}

void BM_CounterAdd(benchmark::State& state) {
  Counter counter;
  uint64_t rng = 42;
  for (auto _ : state) {
    counter.Add(NextValue(rng));
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  uint64_t rng = 42;
  for (auto _ : state) {
    histogram.Record(NextValue(rng));
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramRecord);

// The baseline both of the above pay: generating the value.
void BM_ValueGenOnly(benchmark::State& state) {
  uint64_t rng = 42;
  uint64_t sum = 0;
  for (auto _ : state) {
    sum += NextValue(rng);
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_ValueGenOnly);

void BM_HistogramSnapshot(benchmark::State& state) {
  Histogram histogram;
  uint64_t rng = 42;
  for (int i = 0; i < 10000; ++i) histogram.Record(NextValue(rng));
  for (auto _ : state) {
    HistogramSnapshot snapshot = histogram.Snapshot();
    benchmark::DoNotOptimize(snapshot.Percentile(0.99));
  }
}
BENCHMARK(BM_HistogramSnapshot);

}  // namespace
