// Microbenchmark: what tuple batching buys on the ring hop. One ring slot
// now carries a whole StreamBatch, so the per-message cost of the handoff
// — the atomic head/tail dance, the waker check, the counter updates —
// amortizes over the batch. Sweeping the batch size shows the curve the
// engine's batch_max_size default (64) sits on; size 1 is the old
// per-tuple data plane.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "rts/ring.h"

namespace {

using gigascope::rts::RingChannel;
using gigascope::rts::StreamBatch;
using gigascope::rts::StreamMessage;

StreamBatch MakeBatch(size_t messages, size_t payload_bytes) {
  StreamBatch batch;
  for (size_t i = 0; i < messages; ++i) {
    StreamMessage message;
    message.payload.resize(payload_bytes);
    batch.items.push_back(std::move(message));
  }
  return batch;
}

/// Steady-state single-threaded push/pop: the popped batch is pushed right
/// back, so after warmup no allocation happens and the loop isolates the
/// per-slot transport cost. Reported items are messages, not slots —
/// items/sec across batch sizes is the amortization curve.
void BM_BatchPushPop(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  RingChannel channel(64);
  StreamBatch batch = MakeBatch(batch_size, 64);
  for (auto _ : state) {
    channel.TryPush(std::move(batch));
    channel.TryPop(&batch);
    benchmark::DoNotOptimize(batch.items.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_BatchPushPop)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

/// Consumer drains message-at-a-time through the staging path while the
/// producer pushes whole batches — the shape an unconverted (or
/// message-level) consumer sees. Staging should keep most of the win.
void BM_BatchPushMessagePop(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  RingChannel channel(64);
  StreamMessage out;
  for (auto _ : state) {
    state.PauseTiming();
    StreamBatch batch = MakeBatch(batch_size, 64);
    state.ResumeTiming();
    channel.TryPush(std::move(batch));
    while (channel.TryPop(&out)) {
      benchmark::DoNotOptimize(out.payload.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_BatchPushMessagePop)->Arg(1)->Arg(8)->Arg(64);

/// Two threads, backpressure, a fixed number of messages per iteration
/// carried in batches of the swept size: the cross-core handoff the
/// threaded engine rides on. This is where batching pays most — every slot
/// push/pop is a cache-line conversation between cores.
void BM_TwoThreadBatchHandoff(benchmark::State& state) {
  constexpr uint64_t kMessagesPerIteration = 4096;
  const size_t batch_size = static_cast<size_t>(state.range(0));
  RingChannel channel(256);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> target{0};

  std::thread producer([&] {
    StreamBatch prototype = MakeBatch(batch_size, 64);
    uint64_t produced = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (produced < target.load(std::memory_order_acquire)) {
        StreamBatch batch = prototype;  // producer materializes each batch
        if (channel.TryPush(std::move(batch))) {
          produced += batch_size;
        }
      } else {
        std::this_thread::yield();
      }
    }
  });

  StreamBatch out;
  uint64_t popped = 0;
  for (auto _ : state) {
    target.fetch_add(kMessagesPerIteration, std::memory_order_release);
    const uint64_t goal = popped + kMessagesPerIteration;
    while (popped < goal) {
      if (channel.TryPop(&out)) {
        popped += out.items.size();
      } else {
        std::this_thread::yield();
      }
    }
  }
  stop.store(true, std::memory_order_release);
  producer.join();
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kMessagesPerIteration));
}
BENCHMARK(BM_TwoThreadBatchHandoff)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->UseRealTime();

}  // namespace
