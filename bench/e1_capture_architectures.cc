// E1 — Section 4 of the paper: the four capture-architecture comparison.
//
// "We generated 60 Mbit/sec of port 80 traffic, and additional background
// traffic to vary the data rates. [...] We chose a 2% packet drop rate as
// the maximum acceptable loss."
//
// Paper result (733 MHz host, Tigon GigE):
//   option 1 (dump to disk):        > 2% loss at ~180 Mbit/s
//   option 2 (libpcap + discard):   > 2% loss at ~480 Mbit/s
//   option 3 (Gigascope, host LFTA):> 2% loss at ~480 Mbit/s
//   option 4 (Gigascope, NIC LFTA): < 2% loss even at 610 Mbit/s
//
// This harness reproduces the *shape*: disk ≪ libpcap ≈ host-LFTA < NIC-LFTA,
// with the host options dying of interrupt livelock. Absolute Mbit/s depend
// on the calibrated cost constants (see DESIGN.md §3).

#include <cstdio>
#include <vector>

#include "sim/capture_pipeline.h"
#include "udf/regex.h"

namespace {

using gigascope::sim::CaptureMode;
using gigascope::sim::CaptureModeName;
using gigascope::sim::PipelineConfig;
using gigascope::sim::PipelineStats;
using gigascope::sim::RunCapturePipeline;

PipelineConfig BaseConfig() {
  PipelineConfig config;
  config.traffic.seed = 42;
  config.traffic.num_flows = 4000;
  config.traffic.flow_skew = 0.4;
  config.traffic.mean_payload = 400;
  config.traffic.burstiness = 2.0;
  config.duration_seconds = 1.0;
  return config;
}

}  // namespace

int main() {
  std::printf(
      "E1: packet loss vs offered rate for four capture architectures\n"
      "    (fixed ~60 Mbit/s of port-80 traffic inside the total; HTTP\n"
      "    fraction query running; 2%% loss = failure threshold)\n\n");

  // The real UDF regex engine evaluates the paper's pattern on payloads.
  auto regex = gigascope::udf::Regex::Compile("^[^\\n]*HTTP/1.*");
  if (!regex.ok()) {
    std::fprintf(stderr, "regex compile failed\n");
    return 1;
  }
  const gigascope::udf::Regex& http_regex = *regex;

  const std::vector<double> rates = {100e6, 180e6, 260e6, 340e6, 420e6,
                                     500e6, 580e6, 660e6, 740e6};
  const CaptureMode modes[] = {
      CaptureMode::kDiskDump,
      CaptureMode::kPcapDiscard,
      CaptureMode::kHostLfta,
      CaptureMode::kNicLfta,
  };

  std::printf("%-22s", "offered (Mbit/s)");
  for (double rate : rates) std::printf("%8.0f", rate / 1e6);
  std::printf("\n");

  std::vector<double> thresholds;
  for (CaptureMode mode : modes) {
    std::printf("%-22s", CaptureModeName(mode).c_str());
    double max_ok = 0;
    bool failed_already = false;
    double http_fraction = 0;
    for (double rate : rates) {
      PipelineConfig config = BaseConfig();
      config.mode = mode;
      config.traffic.offered_bits_per_sec = rate;
      // Keep the port-80 component fixed at ~60 Mbit/s as in the paper.
      config.traffic.port80_fraction = 60e6 / rate;
      config.traffic.http_fraction = 0.65;
      config.payload_predicate = [&http_regex](gigascope::ByteSpan payload) {
        return http_regex.Matches(
            std::string_view(reinterpret_cast<const char*>(payload.data()),
                             payload.size()));
      };
      PipelineStats stats = RunCapturePipeline(config);
      std::printf("%7.2f%%", stats.LossRate() * 100);
      // Threshold = highest rate sustained before the first failure (the
      // paper reports a single crossover point).
      if (stats.LossRate() > 0.02) failed_already = true;
      if (!failed_already && rate > max_ok) max_ok = rate;
      // Report the query answer from a non-lossy run.
      if (mode != CaptureMode::kDiskDump && stats.LossRate() <= 0.02) {
        http_fraction = stats.HttpFraction();
      }
    }
    thresholds.push_back(max_ok);
    std::printf("   | <=2%% up to ~%.0f Mbit/s", max_ok / 1e6);
    if (mode == CaptureMode::kNicLfta || mode == CaptureMode::kHostLfta) {
      std::printf("  (HTTP fraction measured: %.2f)", http_fraction);
    }
    std::printf("\n");
  }

  std::printf(
      "\npaper shape check: disk(%0.f) < libpcap(%0.f) ~= host-lfta(%0.f)"
      " < nic-lfta(%0.f)   [Mbit/s]\n",
      thresholds[0] / 1e6, thresholds[1] / 1e6, thresholds[2] / 1e6,
      thresholds[3] / 1e6);
  bool shape_holds = thresholds[0] < thresholds[1] &&
                     thresholds[0] < thresholds[2] &&
                     thresholds[3] > thresholds[1] &&
                     thresholds[3] > thresholds[2];
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
