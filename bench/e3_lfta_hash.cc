// E3 — §3: "An LFTA can perform aggregation, but it uses a small
// direct-mapped hash table. [...] Because of temporal locality, aggregation
// even with a small hash table is effective in early data reduction."
//
// Sweep: table size × flow-popularity skew. Reports eviction rate and the
// output-tuple volume relative to input (the data-reduction factor).

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "ops/lfta_agg.h"

namespace {

using gigascope::Rng;
using gigascope::ZipfSampler;
using gigascope::expr::AggFn;
using gigascope::expr::AggregateSpec;
using gigascope::expr::Value;
using gigascope::ops::DirectMappedAggTable;

struct Cell {
  double eviction_rate;
  double reduction;  // input tuples per output tuple
};

Cell Run(int log2_slots, double skew, uint64_t flows, uint64_t updates) {
  std::vector<AggregateSpec> specs;
  AggregateSpec count;
  count.fn = AggFn::kCount;
  count.result_type = gigascope::gsql::DataType::kUint;
  specs.push_back(count);

  DirectMappedAggTable table(log2_slots, &specs);
  Rng rng(7);
  ZipfSampler sampler(flows, skew);
  std::vector<std::optional<Value>> args(1);
  uint64_t outputs = 0;
  // Epoch structure: drain once per 1/16th of the run, as a time bucket
  // close would.
  uint64_t epoch_len = updates / 16;
  for (uint64_t i = 0; i < updates; ++i) {
    uint64_t flow = sampler.Sample(rng);
    if (table.Upsert({Value::Uint(flow)}, args).has_value()) ++outputs;
    if (epoch_len > 0 && i % epoch_len == epoch_len - 1) {
      outputs += table.DrainAll().size();
    }
  }
  outputs += table.DrainAll().size();
  Cell cell;
  cell.eviction_rate =
      static_cast<double>(table.evictions()) / static_cast<double>(updates);
  cell.reduction = static_cast<double>(updates) /
                   static_cast<double>(outputs == 0 ? 1 : outputs);
  return cell;
}

}  // namespace

int main() {
  const uint64_t kFlows = 100000;
  const uint64_t kUpdates = 1000000;
  const double skews[] = {0.0, 0.8, 1.2};
  const int sizes[] = {6, 8, 10, 12, 14, 16};

  std::printf(
      "E3: direct-mapped LFTA hash table, %llu updates over %llu flows,\n"
      "    16 epochs; eviction rate and data-reduction factor vs table "
      "size\n\n",
      static_cast<unsigned long long>(kUpdates),
      static_cast<unsigned long long>(kFlows));
  std::printf("%-10s", "slots");
  for (int size : sizes) std::printf("%12d", 1 << size);
  std::printf("\n");

  for (double skew : skews) {
    std::printf("zipf=%.1f\n", skew);
    std::printf("  %-8s", "evict");
    std::vector<Cell> cells;
    for (int size : sizes) {
      cells.push_back(Run(size, skew, kFlows, kUpdates));
      std::printf("%11.1f%%", cells.back().eviction_rate * 100);
    }
    std::printf("\n  %-8s", "reduce");
    for (const Cell& cell : cells) {
      std::printf("%11.1fx", cell.reduction);
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected shape: higher skew (more temporal locality) gives useful\n"
      "reduction even at small tables; eviction rate falls with table "
      "size.\n");
  return 0;
}
