// Microbenchmark: tuple pack/unpack — the cost of crossing a query-node
// channel ("fields are packed in a standard fashion", §2.2).

#include <benchmark/benchmark.h>

#include "rts/tuple.h"

namespace {

using gigascope::expr::Value;
using gigascope::gsql::DataType;
using gigascope::gsql::FieldDef;
using gigascope::gsql::OrderSpec;
using gigascope::gsql::StreamKind;
using gigascope::gsql::StreamSchema;
using gigascope::rts::Row;
using gigascope::rts::TupleCodec;

StreamSchema NarrowSchema() {
  std::vector<FieldDef> fields;
  fields.push_back({"time", DataType::kUint, OrderSpec::Increasing()});
  fields.push_back({"destIP", DataType::kIp, OrderSpec::None()});
  fields.push_back({"destPort", DataType::kUint, OrderSpec::None()});
  return StreamSchema("narrow", StreamKind::kStream, fields);
}

StreamSchema PayloadSchema() {
  std::vector<FieldDef> fields = NarrowSchema().fields();
  fields.push_back({"payload", DataType::kString, OrderSpec::None()});
  return StreamSchema("payload", StreamKind::kStream, fields);
}

void BM_EncodeNarrow(benchmark::State& state) {
  TupleCodec codec(NarrowSchema());
  Row row = {Value::Uint(12345), Value::Ip(0x0a000001), Value::Uint(80)};
  gigascope::ByteBuffer buffer;
  for (auto _ : state) {
    buffer.clear();
    codec.Encode(row, &buffer);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeNarrow);

void BM_DecodeNarrow(benchmark::State& state) {
  TupleCodec codec(NarrowSchema());
  Row row = {Value::Uint(12345), Value::Ip(0x0a000001), Value::Uint(80)};
  gigascope::ByteBuffer buffer;
  codec.Encode(row, &buffer);
  for (auto _ : state) {
    auto decoded =
        codec.Decode(gigascope::ByteSpan(buffer.data(), buffer.size()));
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeNarrow);

void BM_RoundTripWithPayload(benchmark::State& state) {
  TupleCodec codec(PayloadSchema());
  Row row = {Value::Uint(12345), Value::Ip(0x0a000001), Value::Uint(80),
             Value::String(std::string(
                 static_cast<size_t>(state.range(0)), 'x'))};
  gigascope::ByteBuffer buffer;
  for (auto _ : state) {
    buffer.clear();
    codec.Encode(row, &buffer);
    auto decoded =
        codec.Decode(gigascope::ByteSpan(buffer.data(), buffer.size()));
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(buffer.size()));
}
BENCHMARK(BM_RoundTripWithPayload)->Arg(64)->Arg(512)->Arg(1400);

}  // namespace
