// E4 — §3 "Unblocking Operators": a merge over a fast and a (nearly)
// silent stream overflows its buffers unless ordering-update tokens
// (heartbeats/punctuations) advance the silent stream's watermark.
// Compares: no heartbeats, periodic heartbeats, on-demand heartbeats
// (emitted only when the merge buffer exceeds a pressure threshold).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/engine.h"

namespace {

using gigascope::expr::Value;
using gigascope::gsql::DataType;
using gigascope::gsql::FieldDef;
using gigascope::gsql::OrderSpec;
using gigascope::gsql::StreamKind;
using gigascope::gsql::StreamSchema;

enum class HeartbeatMode { kNone, kPeriodic, kOnDemand };

const char* ModeName(HeartbeatMode mode) {
  switch (mode) {
    case HeartbeatMode::kNone: return "none";
    case HeartbeatMode::kPeriodic: return "periodic";
    case HeartbeatMode::kOnDemand: return "on-demand";
  }
  return "?";
}

struct RunResult {
  uint64_t emitted;
  uint64_t buffered_high_water;  // peak tuples parked in the merge
  uint64_t heartbeats_sent;
};

RunResult Run(HeartbeatMode mode) {
  using gigascope::core::Engine;
  Engine engine;
  StreamSchema schema(
      "fast", StreamKind::kStream,
      {FieldDef{"time", DataType::kUint, OrderSpec::Increasing()},
       FieldDef{"v", DataType::kUint, OrderSpec::None()}});
  engine.DeclareStream(schema).ok();
  StreamSchema slow("slow", StreamKind::kStream, schema.fields());
  engine.DeclareStream(slow).ok();
  auto info = engine.AddQuery(
      "DEFINE { query_name merged; } MERGE fast.time : slow.time "
      "FROM fast, slow");
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    std::exit(1);
  }
  auto sub = engine.Subscribe("merged", 1 << 20);

  RunResult result{0, 0, 0};
  // 100k fast tuples (1 per "ms"), slow stream sends one tuple total.
  const uint64_t kTuples = 100000;
  uint64_t slow_watermark = 0;
  for (uint64_t i = 1; i <= kTuples; ++i) {
    engine.InjectRow("fast", {Value::Uint(i), Value::Uint(0)}).ok();
    if (i == kTuples / 2) {
      engine.InjectRow("slow", {Value::Uint(i), Value::Uint(1)}).ok();
      slow_watermark = i;
    }
    switch (mode) {
      case HeartbeatMode::kNone:
        break;
      case HeartbeatMode::kPeriodic:
        if (i % 100 == 0 && i > slow_watermark) {
          engine.InjectPunctuation("slow", 0, Value::Uint(i)).ok();
          ++result.heartbeats_sent;
          slow_watermark = i;
        }
        break;
      case HeartbeatMode::kOnDemand:
        break;  // handled at the pump boundary below
    }
    if (i % 64 == 0) {
      engine.PumpUntilIdle();
      auto stats = engine.GetNodeStats();
      uint64_t parked = stats[0].tuples_in - stats[0].tuples_out;
      result.buffered_high_water =
          std::max(result.buffered_high_water, parked);
      // On-demand: "we are experimenting with an on-demand system (i.e.,
      // if an operator detects that it might be blocked)" — emit a token
      // only under buffer pressure.
      if (mode == HeartbeatMode::kOnDemand && parked > 512 &&
          i > slow_watermark) {
        engine.InjectPunctuation("slow", 0, Value::Uint(i)).ok();
        ++result.heartbeats_sent;
        slow_watermark = i;
        engine.PumpUntilIdle();
      }
    }
  }
  engine.PumpUntilIdle();
  while ((*sub)->NextRow()) ++result.emitted;
  return result;
}

}  // namespace

int main() {
  std::printf(
      "E4: merge of a 100k-tuple stream with a nearly-silent stream\n"
      "    (the paper's simplex-link scenario; heartbeats = ordering\n"
      "    update tokens per [Tucker&Maier], periodic vs on-demand)\n\n");
  std::printf("%-12s %12s %16s %12s\n", "heartbeats", "emitted",
              "peak buffered", "tokens sent");
  for (HeartbeatMode mode :
       {HeartbeatMode::kNone, HeartbeatMode::kPeriodic,
        HeartbeatMode::kOnDemand}) {
    RunResult result = Run(mode);
    std::printf("%-12s %12llu %16llu %12llu\n", ModeName(mode),
                static_cast<unsigned long long>(result.emitted),
                static_cast<unsigned long long>(result.buffered_high_water),
                static_cast<unsigned long long>(result.heartbeats_sent));
  }
  std::printf(
      "\nexpected shape: without heartbeats the merge parks (almost) all\n"
      "tuples and emits (almost) nothing until the slow tuple arrives;\n"
      "periodic and on-demand keep the buffer small, on-demand with fewer\n"
      "tokens.\n");
  return 0;
}
