// E6 — §5 headline: "At peak periods, Gigascope processes 1.2 million
// packets per second using an inexpensive dual 2.4 Ghz CPU server."
//
// Measures this repository's packets/second through the full engine path
// (packet interpretation → LFTA evaluation → channels) for representative
// LFTA queries, then compares the single-threaded pump against the
// ThreadedEngine mode (LFTAs on the inject thread, HFTAs on a worker
// pool — the paper's dual-CPU split). Absolute numbers reflect this
// machine; run with --threads=N to size the worker pool (default 4).
//
// Usage: e6_headline_pps [--threads=N] [--packets=N]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/engine.h"
#include "telemetry/http_export.h"
#include "workload/traffic_gen.h"

namespace {

using Clock = std::chrono::steady_clock;
using gigascope::core::Engine;
using gigascope::core::EngineOptions;
using gigascope::net::Packet;

std::vector<Packet> MakeBatch(int packets) {
  gigascope::workload::TrafficConfig config;
  config.seed = 17;
  config.num_flows = 1000;
  config.port80_fraction = 0.1;
  config.http_fraction = 0.5;
  config.offered_bits_per_sec = 500e6;
  gigascope::workload::TrafficGenerator gen(config);
  std::vector<Packet> batch;
  batch.reserve(static_cast<size_t>(packets));
  for (int i = 0; i < packets; ++i) batch.push_back(gen.Next());
  return batch;
}

std::unique_ptr<Engine> MakeEngine(
    const std::string& query, int packets,
    gigascope::SimTime stats_period = 0, size_t trace_sample = 0,
    size_t batch_size = 0, bool processes = false,
    gigascope::jit::JitMode jit_mode = gigascope::jit::JitMode::kOff,
    size_t metrics_arena_slots = static_cast<size_t>(-1)) {
  EngineOptions options;
  // Shm-backed inter-node rings must be chosen before queries are added.
  options.process.enabled = processes;
  if (metrics_arena_slots != static_cast<size_t>(-1)) {
    options.process.metrics_arena_slots = metrics_arena_slots;
  }
  options.jit.mode = jit_mode;
  // Size channels so a full run fits without drops: the comparison should
  // measure operator and handoff cost, not loss policy.
  size_t capacity = 1;
  while (capacity < static_cast<size_t>(packets) + 1024) capacity <<= 1;
  options.channel_capacity = capacity;
  options.stats_period = stats_period;
  options.trace_sample = trace_sample;
  if (batch_size > 0) options.batch_max_size = batch_size;
  auto engine = std::make_unique<Engine>(options);
  engine->AddInterface("eth0");
  auto info = engine->AddQuery(query);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    std::exit(1);
  }
  return engine;
}

double MeasurePps(const std::string& query, const std::vector<Packet>& batch,
                  gigascope::SimTime stats_period = 0,
                  size_t trace_sample = 0, size_t batch_size = 0,
                  gigascope::jit::JitMode jit_mode =
                      gigascope::jit::JitMode::kOff) {
  std::unique_ptr<Engine> owned =
      MakeEngine(query, static_cast<int>(batch.size()), stats_period,
                 trace_sample, batch_size, /*processes=*/false, jit_mode);
  Engine& engine = *owned;
  auto start = Clock::now();
  for (const Packet& packet : batch) {
    engine.InjectPacket("eth0", packet).ok();
    // Keep channels drained like the RTS does.
    if ((&packet - batch.data()) % 4096 == 4095) engine.PumpUntilIdle();
  }
  engine.FlushAll();
  auto end = Clock::now();
  return static_cast<double>(batch.size()) /
         std::chrono::duration<double>(end - start).count();
}

/// ThreadedEngine pump mode: InjectPacket drives interpretation and the
/// LFTA nodes on this thread (the paper links LFTAs into the RTS next to
/// the capture loop) while the worker pool drains the HFTA nodes through
/// the lock-free SPSC rings. FlushAll is the drain barrier.
double MeasurePpsThreaded(const std::string& query,
                          const std::vector<Packet>& batch, size_t threads) {
  std::unique_ptr<Engine> owned =
      MakeEngine(query, static_cast<int>(batch.size()));
  Engine& engine = *owned;
  auto start = Clock::now();
  if (!engine.StartThreads(threads).ok()) std::exit(1);
  for (const Packet& packet : batch) {
    engine.InjectPacket("eth0", packet).ok();
  }
  engine.FlushAll();
  auto end = Clock::now();
  return static_cast<double>(batch.size()) /
         std::chrono::duration<double>(end - start).count();
}

/// Multi-process pump mode: HFTA nodes live in supervised forked workers
/// fed over shm-backed rings (the paper's HFTAs-as-application-processes
/// split). Same drive pattern as the threaded mode; the parent pumps the
/// supervisor between injections via FlushAll's drain at the end.
double MeasurePpsProcesses(const std::string& query,
                           const std::vector<Packet>& batch, size_t workers,
                           size_t metrics_arena_slots =
                               static_cast<size_t>(-1)) {
  std::unique_ptr<Engine> owned = MakeEngine(
      query, static_cast<int>(batch.size()), 0, 0, 0, /*processes=*/true,
      gigascope::jit::JitMode::kOff, metrics_arena_slots);
  Engine& engine = *owned;
  auto start = Clock::now();
  if (!engine.StartProcesses(workers).ok()) std::exit(1);
  for (const Packet& packet : batch) {
    engine.InjectPacket("eth0", packet).ok();
  }
  engine.FlushAll();
  auto end = Clock::now();
  return static_cast<double>(batch.size()) /
         std::chrono::duration<double>(end - start).count();
}

/// One blocking GET against the local metrics endpoint; drains and
/// discards the response (a scraper's cost profile, minus parsing).
void ScrapeOnce(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const char request[] =
        "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
    (void)!write(fd, request, sizeof(request) - 1);
    char buf[4096];
    while (read(fd, buf, sizeof(buf)) > 0) {
    }
  }
  close(fd);
}

/// Single-threaded pump with the HTTP metrics endpoint live and a scraper
/// thread hitting /metrics every `scrape_interval_ms` — the overhead of
/// `gsrun --metrics-port=N` under an aggressive Prometheus schedule (real
/// deployments scrape every few seconds, not every few milliseconds).
double MeasurePpsScraped(const std::string& query,
                         const std::vector<Packet>& batch,
                         int scrape_interval_ms) {
  std::unique_ptr<Engine> owned =
      MakeEngine(query, static_cast<int>(batch.size()));
  Engine& engine = *owned;
  gigascope::telemetry::MetricsHttpServer server;
  gigascope::telemetry::MetricsHttpServer::Handlers handlers;
  handlers.metrics = [&engine] {
    return gigascope::telemetry::FormatPrometheus(
        engine.telemetry().Snapshot());
  };
  handlers.analyze = [&engine] { return engine.AnalyzeJson(); };
  if (!server.Start(0, handlers).ok()) std::exit(1);
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ScrapeOnce(server.port());
      std::this_thread::sleep_for(
          std::chrono::milliseconds(scrape_interval_ms));
    }
  });
  auto start = Clock::now();
  for (const Packet& packet : batch) {
    engine.InjectPacket("eth0", packet).ok();
    if ((&packet - batch.data()) % 4096 == 4095) engine.PumpUntilIdle();
  }
  engine.FlushAll();
  auto end = Clock::now();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  server.Stop();
  return static_cast<double>(batch.size()) /
         std::chrono::duration<double>(end - start).count();
}

struct Workload {
  const char* label;
  const char* query;
};

}  // namespace

int main(int argc, char** argv) {
  size_t threads = 4;
  int packets = 200000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--packets=", 10) == 0) {
      packets = std::atoi(argv[i] + 10);
    } else {
      std::fprintf(stderr,
                   "usage: e6_headline_pps [--threads=N] [--packets=N]\n");
      return 2;
    }
  }
  if (threads == 0) threads = 1;

  const Workload workloads[] = {
      {"filter-only (LFTA)",
       "DEFINE { query_name q1; } "
       "SELECT time, destIP, destPort FROM eth0.PKT "
       "WHERE ipVersion = 4 AND protocol = 6"},
      {"port filter (LFTA)",
       "DEFINE { query_name q2; } "
       "SELECT time, len FROM eth0.PKT "
       "WHERE protocol = 6 AND destPort = 80"},
      {"split aggregation",
       "DEFINE { query_name q3; } "
       "SELECT tb, destIP, count(*), sum(len) FROM eth0.PKT "
       "GROUP BY time AS tb, destIP"},
      {"regex split query",
       "DEFINE { query_name q4; } "
       "SELECT time, len FROM eth0.PKT "
       "WHERE protocol = 6 AND destPort = 80 "
       "AND match_regex(payload, '^[^\\n]*HTTP/1.*')"},
  };

  const std::vector<Packet> batch = MakeBatch(packets);
  std::printf(
      "E6: engine throughput, %d packets per workload (paper headline:\n"
      "    1.2M pps on 2003 hardware for deployed query sets)\n\n",
      packets);
  std::printf("%-22s %16s\n", "workload", "packets/sec");
  for (const Workload& workload : workloads) {
    // Best-of-3 like every other section: scheduler noise on a shared box
    // dwarfs the per-packet cost differences being reported.
    double pps = 0;
    for (int repetition = 0; repetition < 3; ++repetition) {
      pps = std::max(pps, MeasurePps(workload.query, batch));
    }
    std::printf("%-22s %16.0f\n", workload.label, pps);
  }
  std::printf(
      "\nexpected shape: cheap LFTA-only filters are fastest; the regex\n"
      "query is slower but its LFTA pre-filter keeps the expensive work\n"
      "on ~10%% of the packets.\n");

  // Batch-size sweep: one ring slot carries a whole tuple batch, so the
  // per-slot handoff and the VM's per-message setup amortize over
  // batch_max_size messages. Size 1 is the old per-tuple data plane; 64 is
  // the engine default the headline rows above use.
  const size_t kSweep[] = {1, 8, 64, 256};
  std::printf("\nbatch-size sweep (single-threaded pump, best of 3):\n");
  std::printf("%-22s", "workload");
  for (size_t batch_size : kSweep) {
    std::printf(" %9zu", batch_size);
  }
  std::printf(" %9s\n", "64 vs 1");
  for (const Workload& workload : workloads) {
    double at_one = 0;
    double at_default = 0;
    std::printf("%-22s", workload.label);
    for (size_t batch_size : kSweep) {
      double pps = 0;
      for (int repetition = 0; repetition < 3; ++repetition) {
        pps = std::max(pps,
                       MeasurePps(workload.query, batch, 0, 0, batch_size));
      }
      if (batch_size == 1) at_one = pps;
      if (batch_size == 64) at_default = pps;
      std::printf(" %9.0f", pps);
    }
    std::printf(" %8.2fx\n", at_default / at_one);
  }

  // Pipeline parallelism across the LFTA/HFTA boundary (the paper ran on
  // a dual-CPU server with LFTAs linked into the RTS and HFTAs as
  // separate processes). Compare on the split queries — the ones with an
  // HFTA stage for the workers to take over.
  std::printf(
      "\nthreaded pump mode (%zu workers, %u hardware threads on this "
      "machine):\n%-22s %16s %16s %8s\n",
      threads, std::thread::hardware_concurrency(), "workload",
      "single pps", "threaded pps", "ratio");
  for (size_t i : {size_t{2}, size_t{3}}) {
    double single = MeasurePps(workloads[i].query, batch);
    double threaded = MeasurePpsThreaded(workloads[i].query, batch, threads);
    std::printf("%-22s %16.0f %16.0f %7.2fx\n", workloads[i].label, single,
                threaded, threaded / single);
  }
  std::printf(
      "\nobservation: the win tracks how much work the query's HFTA stage\n"
      "carries (final aggregation for q3, regex on the pre-filtered ~10%%\n"
      "for q4) and needs real cores to show up — on a single-CPU machine\n"
      "the two stages time-slice and the ratio stays near or below 1.\n");

  // Multi-process pump mode (DESIGN.md §14): the same LFTA/HFTA split,
  // but HFTAs in supervised forked workers over shm rings — the paper's
  // fault-isolation architecture. The shm serialization and supervisor
  // heartbeats are the overhead being priced; acceptance: within 15% of
  // the in-process single pump on the split queries.
  std::printf(
      "\nmulti-process pump mode (1 supervised worker, shm rings):\n"
      "%-22s %16s %16s %8s\n",
      "workload", "in-process pps", "process pps", "ratio");
  for (size_t i : {size_t{2}, size_t{3}}) {
    double single = 0;
    double process = 0;
    for (int repetition = 0; repetition < 3; ++repetition) {
      single = std::max(single, MeasurePps(workloads[i].query, batch));
      process = std::max(process,
                         MeasurePpsProcesses(workloads[i].query, batch, 1));
    }
    std::printf("%-22s %16.0f %16.0f %7.2fx\n", workloads[i].label, single,
                process, process / single);
  }
  std::printf(
      "\nobservation: process isolation prices each ring handoff with a\n"
      "serialize/deserialize through the shm arena; batching keeps that\n"
      "amortized, so the mode stays within ~15%% of in-process while\n"
      "buying crash containment (see DESIGN.md §14).\n");

  // Native compiled-query tier (DESIGN.md §15): the same headline
  // workloads with every query's expressions transpiled to C++ and
  // hot-swapped in (--jit=sync in gsrun). Compile time lands in query
  // setup, outside the measured window — this prices the steady state.
  // The end-to-end win is bounded by Amdahl: expression evaluation is one
  // slice of the per-packet path next to interpretation and ring hops,
  // and the columnar raw-byte filter pass already bypasses the VM for
  // simple conjunctive LFTA filters.
  // The headline workloads are nearly expression-free by construction
  // (raw-byte filters, bare-field keys), so an expression-bound workload
  // is added: arithmetic in the predicate (defeats the raw-term matcher),
  // the group key, and the aggregate argument, all on the per-packet path.
  const Workload expr_heavy = {
      "expr-heavy aggregation",
      "DEFINE { query_name q5; } "
      "SELECT tb, destIP, count(*), sum(len * 8 + 14) FROM eth0.PKT "
      "WHERE len * 8 > 2000 AND protocol = 6 "
      "GROUP BY time/60 AS tb, destIP"};
  std::printf(
      "\nnative compiled-query tier (--jit=sync, kernels hot-swapped at "
      "setup):\n%-22s %16s %16s %8s\n",
      "workload", "vm pps", "native pps", "ratio");
  std::vector<Workload> jit_workloads(workloads, workloads + 4);
  jit_workloads.push_back(expr_heavy);
  for (const Workload& workload : jit_workloads) {
    double vm = 0;
    double native = 0;
    for (int repetition = 0; repetition < 5; ++repetition) {
      vm = std::max(vm, MeasurePps(workload.query, batch));
      native = std::max(
          native, MeasurePps(workload.query, batch, 0, 0, 0,
                             gigascope::jit::JitMode::kSync));
    }
    std::printf("%-22s %16.0f %16.0f %7.3fx\n", workload.label, vm, native,
                native / vm);
  }

  // Shm metrics arena overhead (DESIGN.md §16): in process mode every
  // worker-owned counter/histogram cell lives in the shared-memory arena
  // instead of the child heap — same relaxed atomics, different cache
  // lines. Ablate with metrics_arena_slots=0 (workers keep private
  // counters the parent cannot see) to price the aggregation plane.
  std::printf(
      "\nshm metrics arena overhead (1 supervised worker; arena off = "
      "workers\nkeep invisible private counters):\n%-22s %16s %16s %8s\n",
      "workload", "arena-off pps", "arena-on pps", "ratio");
  for (size_t i : {size_t{2}, size_t{3}}) {
    double off = 0;
    double on = 0;
    for (int repetition = 0; repetition < 5; ++repetition) {
      off = std::max(off, MeasurePpsProcesses(workloads[i].query, batch, 1,
                                              /*metrics_arena_slots=*/0));
      on = std::max(on, MeasurePpsProcesses(workloads[i].query, batch, 1));
    }
    std::printf("%-22s %16.0f %16.0f %7.3fx\n", workloads[i].label, off, on,
                on / off);
  }

  // Metrics endpoint overhead: the accept thread snapshots the registry
  // and renders Prometheus text per scrape. 50ms is ~100x more aggressive
  // than a real Prometheus schedule; the hot path only pays if the
  // snapshot mutex collides with a registration (never, mid-run) — the
  // expected cost is scraper CPU competing for this container's core.
  std::printf(
      "\nmetrics endpoint overhead (--metrics-port, /metrics scraped "
      "every 50ms):\n%-22s %16s %16s %8s\n",
      "workload", "endpoint-off pps", "scraped pps", "ratio");
  for (const Workload& workload : workloads) {
    double off = 0;
    double on = 0;
    for (int repetition = 0; repetition < 5; ++repetition) {
      off = std::max(off, MeasurePps(workload.query, batch));
      on = std::max(on, MeasurePpsScraped(workload.query, batch, 50));
    }
    std::printf("%-22s %16.0f %16.0f %7.3fx\n", workload.label, off, on,
                on / off);
  }

  // Self-telemetry overhead: the counters are single-writer relaxed
  // atomics on the hot path and the gs_stats emitter fires once per
  // sim-second of traffic, so stats-on should stay within a few percent
  // of stats-off (acceptance bound: 3%).
  std::printf(
      "\ntelemetry overhead (gs_stats snapshot every 1s of capture "
      "time):\n%-22s %16s %16s %8s\n",
      "workload", "stats-off pps", "stats-on pps", "ratio");
  for (const Workload& workload : workloads) {
    // Interleaved best-of-5: scheduler noise on a shared box dwarfs the
    // per-packet cost being measured.
    double off = 0;
    double on = 0;
    for (int repetition = 0; repetition < 5; ++repetition) {
      off = std::max(off, MeasurePps(workload.query, batch));
      on = std::max(
          on, MeasurePps(workload.query, batch, gigascope::kNanosPerSecond));
    }
    std::printf("%-22s %16.0f %16.0f %7.3fx\n", workload.label, off, on,
                on / off);
  }

  // Sampled tracing overhead: untraced packets pay one RNG draw per
  // injection and a trace_id==0 branch per operator; 1-in-128 packets take
  // the mutex-guarded span-recording path. Tracing off must cost nothing
  // (the engine holds no tracer at all), and 1-in-128 sampling should sit
  // within a few percent of off.
  std::printf(
      "\ntracing overhead (--trace-sample=128, Chrome-trace event "
      "recording):\n%-22s %16s %16s %8s\n",
      "workload", "trace-off pps", "trace-on pps", "ratio");
  for (const Workload& workload : workloads) {
    double off = 0;
    double on = 0;
    for (int repetition = 0; repetition < 5; ++repetition) {
      off = std::max(off, MeasurePps(workload.query, batch));
      on = std::max(on, MeasurePps(workload.query, batch, 0, 128));
    }
    std::printf("%-22s %16.0f %16.0f %7.3fx\n", workload.label, off, on,
                on / off);
  }
  return 0;
}
