// E6 — §5 headline: "At peak periods, Gigascope processes 1.2 million
// packets per second using an inexpensive dual 2.4 Ghz CPU server."
//
// Measures this repository's packets/second through the full engine path
// (packet interpretation → LFTA evaluation → channels) for representative
// LFTA queries. Absolute numbers reflect this machine; the point is that a
// filter-only LFTA runs at millions of packets/second.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "workload/traffic_gen.h"

namespace {

using Clock = std::chrono::steady_clock;
using gigascope::core::Engine;
using gigascope::net::Packet;

double MeasurePps(const std::string& query, int packets) {
  Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(query);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    std::exit(1);
  }

  // Pre-generate packets so generation cost stays out of the measurement.
  gigascope::workload::TrafficConfig config;
  config.seed = 17;
  config.num_flows = 1000;
  config.port80_fraction = 0.1;
  config.http_fraction = 0.5;
  config.offered_bits_per_sec = 500e6;
  gigascope::workload::TrafficGenerator gen(config);
  std::vector<Packet> batch;
  batch.reserve(static_cast<size_t>(packets));
  for (int i = 0; i < packets; ++i) batch.push_back(gen.Next());

  auto start = Clock::now();
  for (const Packet& packet : batch) {
    engine.InjectPacket("eth0", packet).ok();
    // Keep channels drained like the RTS does.
    if ((&packet - batch.data()) % 4096 == 4095) engine.PumpUntilIdle();
  }
  engine.PumpUntilIdle();
  engine.FlushAll();
  auto end = Clock::now();
  return packets / std::chrono::duration<double>(end - start).count();
}

/// Pipeline parallelism: the paper's LFTAs and HFTAs are separate
/// processes on a dual-CPU server; here an injector thread feeds packets
/// while a pumper thread drives the operator nodes (the ring channels are
/// thread-safe).
double MeasurePpsThreaded(const std::string& query, int packets) {
  Engine engine;
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(query);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    std::exit(1);
  }
  gigascope::workload::TrafficConfig config;
  config.seed = 17;
  config.num_flows = 1000;
  config.port80_fraction = 0.1;
  config.http_fraction = 0.5;
  config.offered_bits_per_sec = 500e6;
  gigascope::workload::TrafficGenerator gen(config);
  std::vector<Packet> batch;
  batch.reserve(static_cast<size_t>(packets));
  for (int i = 0; i < packets; ++i) batch.push_back(gen.Next());

  std::atomic<bool> done{false};
  auto start = Clock::now();
  std::thread pumper([&engine, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      if (engine.Pump(4096) == 0) std::this_thread::yield();
    }
    engine.PumpUntilIdle();
  });
  // Inject with backpressure: never run more than half a channel ahead of
  // the pumper, so nothing drops and the measurement stays honest.
  uint64_t injected = 0;
  for (const Packet& packet : batch) {
    engine.InjectPacket("eth0", packet).ok();
    ++injected;
    if (injected % 1024 == 0) {
      while (true) {
        auto stats = engine.GetNodeStats();
        uint64_t consumed = stats.empty() ? injected : stats[0].tuples_in;
        if (injected - consumed < 4096) break;
        std::this_thread::yield();
      }
    }
  }
  done.store(true, std::memory_order_relaxed);
  pumper.join();
  engine.FlushAll();
  auto end = Clock::now();
  return packets / std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main() {
  const int kPackets = 200000;
  struct Workload {
    const char* label;
    const char* query;
  };
  const Workload workloads[] = {
      {"filter-only (LFTA)",
       "DEFINE { query_name q1; } "
       "SELECT time, destIP, destPort FROM eth0.PKT "
       "WHERE ipVersion = 4 AND protocol = 6"},
      {"port filter (LFTA)",
       "DEFINE { query_name q2; } "
       "SELECT time, len FROM eth0.PKT "
       "WHERE protocol = 6 AND destPort = 80"},
      {"split aggregation",
       "DEFINE { query_name q3; } "
       "SELECT tb, destIP, count(*), sum(len) FROM eth0.PKT "
       "GROUP BY time AS tb, destIP"},
      {"regex split query",
       "DEFINE { query_name q4; } "
       "SELECT time, len FROM eth0.PKT "
       "WHERE protocol = 6 AND destPort = 80 "
       "AND match_regex(payload, '^[^\\n]*HTTP/1.*')"},
  };

  std::printf(
      "E6: engine throughput, %d packets per workload (paper headline:\n"
      "    1.2M pps on 2003 hardware for deployed query sets)\n\n",
      kPackets);
  std::printf("%-22s %16s\n", "workload", "packets/sec");
  for (const Workload& workload : workloads) {
    double pps = MeasurePps(workload.query, kPackets);
    std::printf("%-22s %16.0f\n", workload.label, pps);
  }
  std::printf(
      "\nexpected shape: cheap LFTA-only filters are fastest; the regex\n"
      "query is slower but its LFTA pre-filter keeps the expensive work\n"
      "on ~10%% of the packets.\n");

  // Pipeline parallelism across the LFTA/HFTA boundary (the paper ran on
  // a dual-CPU server with LFTAs linked into the RTS and HFTAs as
  // separate processes).
  double single = MeasurePps(workloads[3].query, kPackets);
  double threaded = MeasurePpsThreaded(workloads[3].query, kPackets);
  std::printf(
      "\npipeline parallelism (regex split query):\n"
      "%-22s %16.0f\n%-22s %16.0f   (%.2fx)\n", "single-threaded", single,
      "injector + pumper", threaded, threaded / single);
  std::printf(
      "\nobservation: splitting capture and query work across threads buys\n"
      "little here — the channel hop costs about as much as the per-tuple\n"
      "work it overlaps. This echoes the paper's actual lesson: the\n"
      "LFTA/HFTA win comes from early data *reduction* (E2/E5), not from\n"
      "parallelism.\n");
  return 0;
}
