// E10 — closed-loop overload management (§3 graceful degradation):
//
//   "If the load is too high ... it is better to gracefully degrade the
//    answer than to fail or fall behind arbitrarily."
//
// Models a constrained service capacity: the engine receives a fixed pump
// budget per block of injected packets, and the offered-load multiple
// divides it (2x load = half the service per packet). At 1x the engine
// keeps up; beyond that, rings back up and the run either silently drops
// tuples (shed off) or walks the shedding ladder (shed on): 1-in-k source
// sampling with Horvitz-Thompson-scaled COUNT/SUM, coarser LFTA epochs,
// and a bounded LFTA table.
//
// Reported per (load, shed) cell:
//   accounted   sum of output COUNTs — the packets the answer accounts
//               for, directly (weight 1) or through a survivor's weight.
//               goodput here: accounted/offered is the answer fidelity.
//   drops       ring messages dropped (tuples lost without accounting)
//   shed        packets deliberately shed at the source (covered by HT
//               weights, not lost)
//   max lag     worst observed window-close lag in stream seconds after
//               warmup — bounded lag means windows kept closing.
//
// Usage: e10_overload [--packets=N]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/engine.h"
#include "telemetry/metric_names.h"
#include "workload/traffic_gen.h"

namespace {

using gigascope::SimTime;
using gigascope::core::Engine;
using gigascope::core::EngineOptions;
using gigascope::core::TupleSubscription;
using gigascope::net::Packet;

// Service model: one Pump(kBaseBudget / load) per kServiceEvery injected
// packets. kBaseBudget is sized so a 1x run keeps up with headroom and a
// 2x run cannot.
constexpr int kServiceEvery = 256;
constexpr size_t kBaseBudget = 300;

std::vector<Packet> MakeTraffic(int packets) {
  gigascope::workload::TrafficConfig config;
  config.seed = 17;
  config.num_flows = 1000;
  config.port80_fraction = 0.1;
  config.http_fraction = 0.5;
  // Slow enough that the run spans ~20 stream seconds: second-granular
  // GROUP BY windows and the 50ms shed checks both get a real timeline.
  config.offered_bits_per_sec = 50e6;
  gigascope::workload::TrafficGenerator gen(config);
  std::vector<Packet> traffic;
  traffic.reserve(static_cast<size_t>(packets));
  for (int i = 0; i < packets; ++i) traffic.push_back(gen.Next());
  return traffic;
}

uint64_t Metric(const Engine& engine, const char* entity,
                const char* metric) {
  for (const auto& sample : engine.telemetry().Snapshot()) {
    if (sample.entity == entity && sample.metric == metric) {
      return sample.value;
    }
  }
  return 0;
}

struct CellResult {
  uint64_t offered = 0;
  uint64_t accounted = 0;   // sum of output COUNTs
  uint64_t drops = 0;       // ring messages lost
  uint64_t shed = 0;        // packets shed at the source (accounted via HT)
  uint64_t max_level = 0;   // highest shed level reached
  uint64_t final_level = 0;
  double max_lag_sec = 0;   // worst window-close lag after warmup
};

CellResult RunCell(const std::vector<Packet>& traffic, int load_mult,
                   bool shed) {
  EngineOptions options;
  options.channel_capacity = 512;
  options.batch_max_size = 4;
  options.punctuation_interval = 64;
  options.shed.enabled = shed;
  options.shed.check_period = gigascope::kNanosPerSecond / 20;
  Engine engine(options);
  engine.AddInterface("eth0");
  auto info = engine.AddQuery(
      "DEFINE { query_name e10; } "
      "SELECT tb, count(*) FROM eth0.PKT GROUP BY time AS tb");
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    std::exit(1);
  }
  auto sub = engine.Subscribe("e10", 65536);
  if (!sub.ok()) std::exit(1);

  CellResult result;
  result.offered = traffic.size();
  const size_t budget =
      std::max<size_t>(1, kBaseBudget / static_cast<size_t>(load_mult));
  const size_t warmup = traffic.size() / 4;
  uint64_t max_tb = 0;
  for (size_t i = 0; i < traffic.size(); ++i) {
    engine.InjectPacket("eth0", traffic[i]).ok();
    if (i % kServiceEvery == kServiceEvery - 1) {
      engine.Pump(budget);
      while (auto row = (*sub)->NextRow()) {
        max_tb = std::max(max_tb, (*row)[0].uint_value());
        result.accounted += (*row)[1].uint_value();
      }
      result.max_level =
          std::max(result.max_level,
                   Metric(engine, "engine",
                          gigascope::telemetry::metric::kShedLevel));
      if (i > warmup && max_tb > 0) {
        const double inject_sec =
            static_cast<double>(traffic[i].timestamp) /
            static_cast<double>(gigascope::kNanosPerSecond);
        result.max_lag_sec = std::max(
            result.max_lag_sec, inject_sec - static_cast<double>(max_tb));
      }
    }
  }
  result.final_level =
      Metric(engine, "engine", gigascope::telemetry::metric::kShedLevel);
  engine.FlushAll();
  while (auto row = (*sub)->NextRow()) {
    result.accounted += (*row)[1].uint_value();
  }
  result.drops = engine.registry().TotalDropsAll();
  result.shed =
      Metric(engine, "engine", gigascope::telemetry::metric::kShedTuples);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int packets = 200000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--packets=", 10) == 0) {
      packets = std::atoi(argv[i] + 10);
    } else {
      std::fprintf(stderr, "usage: e10_overload [--packets=N]\n");
      return 2;
    }
  }

  const std::vector<Packet> traffic = MakeTraffic(packets);
  std::printf(
      "E10: closed-loop overload management, %d packets, service budget\n"
      "     %zu msgs per %d packets divided by the load multiple\n\n",
      packets, kBaseBudget, kServiceEvery);
  std::printf("%4s %5s %10s %10s %9s %9s %6s %8s %9s\n", "load", "shed",
              "offered", "accounted", "fidelity", "drops", "shed%",
              "maxlvl", "lag(s)");

  double goodput_2x_off = 0;
  double goodput_2x_on = 0;
  double lag_2x_on = 0;
  for (int load : {1, 2, 4}) {
    for (bool shed : {false, true}) {
      CellResult cell = RunCell(traffic, load, shed);
      const double fidelity = static_cast<double>(cell.accounted) /
                              static_cast<double>(cell.offered);
      const double shed_pct = 100.0 * static_cast<double>(cell.shed) /
                              static_cast<double>(cell.offered);
      std::printf("%3dx %5s %10lu %10lu %8.1f%% %9lu %5.1f%% %8lu %9.2f\n",
                  load, shed ? "on" : "off",
                  static_cast<unsigned long>(cell.offered),
                  static_cast<unsigned long>(cell.accounted),
                  100.0 * fidelity, static_cast<unsigned long>(cell.drops),
                  shed_pct, static_cast<unsigned long>(cell.max_level),
                  cell.max_lag_sec);
      if (load == 2 && !shed) goodput_2x_off = fidelity;
      if (load == 2 && shed) {
        goodput_2x_on = fidelity;
        lag_2x_on = cell.max_lag_sec;
      }
    }
  }

  const double ratio =
      goodput_2x_off > 0 ? goodput_2x_on / goodput_2x_off : 0;
  std::printf(
      "\n2x overload: shed-on accounts for %.2fx the packets shed-off "
      "does\n(acceptance: >= 1.5x, window-close lag bounded: %.2fs)\n",
      ratio, lag_2x_on);
  std::printf(
      "\nexpected shape: at 1x both runs account for ~100%%. Beyond the\n"
      "service capacity the shed-off run silently drops whatever the full\n"
      "rings reject, while the shed-on run escalates the ladder (sampling\n"
      "first), keeps windows closing, and covers shed packets through the\n"
      "Horvitz-Thompson weights — losing fidelity gracefully instead of\n"
      "arbitrarily.\n");
  return 0;
}
