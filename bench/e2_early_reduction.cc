// E2 — "Early data reduction is critical for performance, and the earlier
// the better" (§4) / the LFTA's purpose (§3): measure the data volume
// crossing the LFTA→HFTA channel with and without LFTA pre-processing,
// across predicate selectivities.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "workload/traffic_gen.h"

namespace {

using gigascope::core::Engine;
using gigascope::net::Packet;

struct Reduction {
  uint64_t packets_in = 0;
  uint64_t tuples_to_hfta = 0;
  uint64_t bytes_to_hfta = 0;
};

/// Runs a filter+aggregate query and measures traffic on the LFTA stream.
Reduction Measure(uint16_t max_port, bool with_preagg) {
  Engine engine;
  engine.AddInterface("eth0");
  // Selectivity knob: destPort < max_port matches a controllable fraction
  // of the uniformly distributed ports.
  char query[512];
  if (with_preagg) {
    std::snprintf(query, sizeof(query),
                  "DEFINE { query_name q; } "
                  "SELECT tb, destIP, count(*), sum(len) FROM eth0.PKT "
                  "WHERE destPort < %u GROUP BY time AS tb, destIP",
                  static_cast<unsigned>(max_port));
  } else {
    // No aggregation: every matching packet crosses to the subscriber.
    std::snprintf(query, sizeof(query),
                  "DEFINE { query_name q; } "
                  "SELECT time, destIP, len FROM eth0.PKT "
                  "WHERE destPort < %u",
                  static_cast<unsigned>(max_port));
  }
  auto info = engine.AddQuery(query);
  if (!info.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 info.status().ToString().c_str());
    std::exit(1);
  }
  // Observe the stream that crosses from the LFTA to the HFTA (or the
  // query output when the whole query is one LFTA).
  std::string boundary = info->has_hfta ? info->lfta_name : info->name;
  auto channel = engine.registry().Subscribe(boundary, 1 << 20);

  gigascope::workload::TrafficConfig config;
  config.seed = 11;
  config.num_flows = 300;
  config.offered_bits_per_sec = 40e6;
  gigascope::workload::TrafficGenerator gen(config);

  Reduction result;
  for (int i = 0; i < 30000; ++i) {
    Packet packet = gen.Next();
    ++result.packets_in;
    engine.InjectPacket("eth0", packet).ok();
    if (i % 1024 == 0) engine.PumpUntilIdle();
  }
  engine.PumpUntilIdle();
  engine.FlushAll();

  gigascope::rts::StreamMessage message;
  while ((*channel)->TryPop(&message)) {
    if (message.kind != gigascope::rts::StreamMessage::Kind::kTuple) continue;
    ++result.tuples_to_hfta;
    result.bytes_to_hfta += message.payload.size();
  }
  return result;
}

}  // namespace

int main() {
  std::printf(
      "E2: data volume crossing the LFTA boundary, 30000 packets offered\n"
      "    (LFTA filtering and pre-aggregation = the paper's early data\n"
      "    reduction; compare tuples shipped per selectivity)\n\n");
  std::printf("%-14s %-12s %14s %14s %10s\n", "selectivity", "lfta-preagg",
              "tuples-out", "bytes-out", "reduction");

  struct Point {
    const char* label;
    uint16_t max_port;
  };
  const Point points[] = {
      {"~100%", 65535}, {"~50%", 32768}, {"~10%", 6554}, {"~1%", 655}};

  for (const Point& point : points) {
    Reduction filter_only = Measure(point.max_port, false);
    Reduction with_agg = Measure(point.max_port, true);
    std::printf("%-14s %-12s %14llu %14llu %9.1fx\n", point.label, "no",
                static_cast<unsigned long long>(filter_only.tuples_to_hfta),
                static_cast<unsigned long long>(filter_only.bytes_to_hfta),
                static_cast<double>(filter_only.packets_in) /
                    static_cast<double>(
                        std::max<uint64_t>(filter_only.tuples_to_hfta, 1)));
    std::printf("%-14s %-12s %14llu %14llu %9.1fx\n", point.label, "yes",
                static_cast<unsigned long long>(with_agg.tuples_to_hfta),
                static_cast<unsigned long long>(with_agg.bytes_to_hfta),
                static_cast<double>(with_agg.packets_in) /
                    static_cast<double>(
                        std::max<uint64_t>(with_agg.tuples_to_hfta, 1)));
  }
  std::printf(
      "\nexpected shape: pre-aggregation ships far fewer tuples than\n"
      "filter-only at every selectivity; reduction grows as selectivity "
      "falls.\n");
  return 0;
}
