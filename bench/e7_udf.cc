// E7 — §2.2's UDF machinery: (a) getlpmid's special fast algorithm (a
// trie) versus a naive linear scan, on a realistic prefix-table size; and
// (b) the pass-by-handle discipline: compile-once regex versus
// compile-per-call.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "udf/lpm.h"
#include "udf/regex.h"

namespace {

using Clock = std::chrono::steady_clock;
using gigascope::Rng;
using gigascope::udf::LpmTable;
using gigascope::udf::Regex;

double Seconds(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main() {
  // ----- (a) LPM: trie vs linear scan -----
  const int kPrefixes = 100000;
  const int kLookups = 2000000;
  const int kLinearLookups = 20000;  // linear is too slow for 2M
  Rng rng(123);
  LpmTable table;
  for (int i = 0; i < kPrefixes; ++i) {
    uint32_t prefix = static_cast<uint32_t>(rng.Next());
    int len = 8 + static_cast<int>(rng.NextBelow(17));  // /8 .. /24
    table.Add(prefix, len, rng.NextBelow(1000)).ok();
  }
  std::vector<uint32_t> addresses;
  addresses.reserve(kLookups);
  for (int i = 0; i < kLookups; ++i) {
    addresses.push_back(static_cast<uint32_t>(rng.Next()));
  }

  uint64_t hits = 0;
  auto start = Clock::now();
  for (uint32_t addr : addresses) {
    if (table.Lookup(addr).has_value()) ++hits;
  }
  auto end = Clock::now();
  double trie_rate = kLookups / Seconds(start, end);

  uint64_t linear_hits = 0;
  start = Clock::now();
  for (int i = 0; i < kLinearLookups; ++i) {
    if (table.LookupLinear(addresses[static_cast<size_t>(i)]).has_value()) {
      ++linear_hits;
    }
  }
  end = Clock::now();
  double linear_rate = kLinearLookups / Seconds(start, end);

  std::printf(
      "E7a: getlpmid over a %d-prefix table (the paper's 'special fast\n"
      "     algorithms' for longest prefix matching)\n\n",
      kPrefixes);
  std::printf("%-16s %16s\n", "algorithm", "lookups/sec");
  std::printf("%-16s %16.0f\n", "binary trie", trie_rate);
  std::printf("%-16s %16.0f\n", "linear scan", linear_rate);
  std::printf("speedup: %.0fx (hit rate %.1f%%)\n\n",
              trie_rate / linear_rate,
              100.0 * static_cast<double>(hits) / kLookups);

  // ----- (b) pass-by-handle: compile-once vs compile-per-call -----
  const char* kPattern = "^[^\\n]*HTTP/1.*";
  const int kMatches = 200000;
  std::vector<std::string> payloads;
  payloads.reserve(kMatches);
  for (int i = 0; i < kMatches; ++i) {
    payloads.push_back(i % 3 == 0 ? "HTTP/1.1 200 OK\r\nServer: x\r\n"
                                  : "opaque tunnel payload bytes......");
  }

  auto compiled = Regex::Compile(kPattern);
  if (!compiled.ok()) return 1;
  uint64_t matched = 0;
  start = Clock::now();
  for (const std::string& payload : payloads) {
    if (compiled->Matches(payload)) ++matched;
  }
  end = Clock::now();
  double handle_rate = kMatches / Seconds(start, end);

  const int kPerCall = 20000;  // recompiling is slow; use fewer iterations
  start = Clock::now();
  for (int i = 0; i < kPerCall; ++i) {
    auto recompiled = Regex::Compile(kPattern);
    if (recompiled.ok() &&
        recompiled->Matches(payloads[static_cast<size_t>(i)])) {
      ++matched;
    }
  }
  end = Clock::now();
  double percall_rate = kPerCall / Seconds(start, end);

  std::printf(
      "E7b: match_regex with pass-by-handle (compile once at query\n"
      "     instantiation) vs recompiling the pattern per call\n\n");
  std::printf("%-18s %16s\n", "strategy", "matches/sec");
  std::printf("%-18s %16.0f\n", "handle (once)", handle_rate);
  std::printf("%-18s %16.0f\n", "compile per call", percall_rate);
  std::printf("speedup: %.1fx\n\n", handle_rate / percall_rate);

  // ----- (c) pass-by-handle for getlpmid: the paper's own example, where
  // the handle registration reads the prefix file and builds the trie once
  // ("the parameter handle ties this table to the function invocation").
  const int kHandlePrefixes = 10000;
  std::string table_text;
  {
    Rng table_rng(55);
    for (int i = 0; i < kHandlePrefixes; ++i) {
      uint32_t prefix = static_cast<uint32_t>(table_rng.Next());
      char line[64];
      std::snprintf(line, sizeof(line), "%u.%u.%u.0/24 %u\n",
                    (prefix >> 24) & 0xff, (prefix >> 16) & 0xff,
                    (prefix >> 8) & 0xff,
                    static_cast<unsigned>(table_rng.NextBelow(100)));
      table_text += line;
    }
  }
  const int kHandleLookups = 200000;
  auto handle_table = LpmTable::Parse(table_text);
  if (!handle_table.ok()) return 1;
  start = Clock::now();
  uint64_t handle_hits = 0;
  Rng lookup_rng(77);
  for (int i = 0; i < kHandleLookups; ++i) {
    if (handle_table->Lookup(static_cast<uint32_t>(lookup_rng.Next()))
            .has_value()) {
      ++handle_hits;
    }
  }
  end = Clock::now();
  double table_handle_rate = kHandleLookups / Seconds(start, end);

  const int kRebuildCalls = 100;  // rebuilding the table per call is slow
  start = Clock::now();
  for (int i = 0; i < kRebuildCalls; ++i) {
    auto rebuilt = LpmTable::Parse(table_text);
    if (rebuilt.ok() &&
        rebuilt->Lookup(static_cast<uint32_t>(lookup_rng.Next()))
            .has_value()) {
      ++handle_hits;
    }
  }
  end = Clock::now();
  double rebuild_rate = kRebuildCalls / Seconds(start, end);

  std::printf(
      "E7c: getlpmid pass-by-handle (build the %d-prefix trie once at\n"
      "     query instantiation) vs re-reading the table per call\n\n",
      kHandlePrefixes);
  std::printf("%-18s %16s\n", "strategy", "calls/sec");
  std::printf("%-18s %16.0f\n", "handle (once)", table_handle_rate);
  std::printf("%-18s %16.0f\n", "rebuild per call", rebuild_rate);
  std::printf("speedup: %.0fx\n", table_handle_rate / rebuild_rate);
  return 0;
}
